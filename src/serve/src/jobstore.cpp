#include "rri/serve/jobstore.hpp"

#include <cstring>
#include <utility>

#include "rri/core/crc32.hpp"
#include "rri/core/serialize.hpp"
#include "rri/obs/obs.hpp"

namespace rri::serve {
namespace {

constexpr char kMagic[4] = {'R', 'R', 'J', 'L'};
/// v1: pre-quota journals (no tenant/deadline on submit records).
/// v2: submit records carry the tenant name and deadline_s.
/// v3: submit records carry the algebra tag + temperature; outcomes
///     carry the algebra tag + log_z. Older journals decode with the
///     tropical defaults, which is exactly what they computed.
constexpr std::uint32_t kVersionOldest = 1;
constexpr std::uint32_t kVersion = 3;

template <typename T>
void append_pod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T take_pod(const std::string& bytes, std::size_t& pos, std::size_t end) {
  if (pos + sizeof(T) > end) {
    throw core::SerializeError("truncated job journal");
  }
  T value{};
  std::memcpy(&value, bytes.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

void append_string(std::string& out, const std::string& s) {
  append_pod(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

std::string take_string(const std::string& bytes, std::size_t& pos,
                        std::size_t end) {
  const auto len = take_pod<std::uint32_t>(bytes, pos, end);
  if (pos + len > end) {
    throw core::SerializeError("truncated job journal");
  }
  std::string s = bytes.substr(pos, len);
  pos += len;
  return s;
}

void append_outcome(std::string& out, const JobOutcome& o) {
  append_string(out, o.id);
  append_pod(out, o.key);
  append_pod(out, static_cast<std::int32_t>(o.m));
  append_pod(out, static_cast<std::int32_t>(o.n));
  append_pod(out, o.score);
  append_pod(out, static_cast<std::uint8_t>(o.cache_hit ? 1 : 0));
  append_pod(out, static_cast<std::uint8_t>(o.rejected ? 1 : 0));
  append_pod(out, o.seconds);
  append_pod(out, static_cast<std::uint8_t>(o.algebra));
  append_pod(out, o.log_z);
}

JobOutcome take_outcome(const std::string& bytes, std::size_t& pos,
                        std::size_t end, std::uint32_t version) {
  JobOutcome o;
  o.id = take_string(bytes, pos, end);
  o.key = take_pod<std::uint32_t>(bytes, pos, end);
  o.m = take_pod<std::int32_t>(bytes, pos, end);
  o.n = take_pod<std::int32_t>(bytes, pos, end);
  o.score = take_pod<float>(bytes, pos, end);
  o.cache_hit = take_pod<std::uint8_t>(bytes, pos, end) != 0;
  o.rejected = take_pod<std::uint8_t>(bytes, pos, end) != 0;
  o.seconds = take_pod<double>(bytes, pos, end);
  if (version >= 3) {
    o.algebra = static_cast<semiring::Algebra>(
        take_pod<std::uint8_t>(bytes, pos, end));
    o.log_z = take_pod<double>(bytes, pos, end);
  }
  return o;
}

}  // namespace

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

std::string encode_journal(const std::vector<JournalRecord>& records) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  append_pod(out, kVersion);
  append_pod(out, static_cast<std::uint32_t>(records.size()));
  for (const JournalRecord& r : records) {
    append_pod(out, static_cast<std::uint8_t>(r.kind));
    append_string(out, r.id);
    switch (r.kind) {
      case JournalRecord::Kind::kSubmit:
        append_string(out, r.s1);
        append_string(out, r.s2);
        append_pod(out, static_cast<std::uint8_t>(r.params.unit_weights));
        append_pod(out, static_cast<std::int32_t>(r.params.min_hairpin));
        append_pod(out, static_cast<std::uint8_t>(r.params.reverse));
        append_string(out, r.tenant);
        append_pod(out, r.deadline_s);
        append_pod(out, static_cast<std::uint8_t>(r.params.algebra));
        append_pod(out, r.params.temperature);
        break;
      case JournalRecord::Kind::kDone:
        append_outcome(out, r.outcome);
        break;
      case JournalRecord::Kind::kFailed:
        append_string(out, r.error);
        break;
      case JournalRecord::Kind::kStart:
      case JournalRecord::Kind::kCancelled:
        break;
    }
  }
  append_pod(out, core::crc32(out.data(), out.size()));
  return out;
}

std::vector<JournalRecord> decode_journal(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + sizeof(std::uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw core::SerializeError("not an RRJL job journal (bad magic)");
  }
  // Integrity first: everything after this line may trust the bytes.
  const std::size_t body = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t footer = 0;
  std::memcpy(&footer, bytes.data() + body, sizeof(footer));
  const std::uint32_t computed = core::crc32(bytes.data(), body);
  if (footer != computed) {
    throw core::SerializeError(
        "job journal checksum mismatch (stored CRC32 " +
        std::to_string(footer) + ", computed " + std::to_string(computed) +
        ")");
  }
  std::size_t pos = sizeof(kMagic);
  const auto version = take_pod<std::uint32_t>(bytes, pos, body);
  if (version < kVersionOldest || version > kVersion) {
    throw core::SerializeError("unsupported RRJL version " +
                               std::to_string(version));
  }
  const auto count = take_pod<std::uint32_t>(bytes, pos, body);
  std::vector<JournalRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    JournalRecord r;
    const auto kind = take_pod<std::uint8_t>(bytes, pos, body);
    if (kind > static_cast<std::uint8_t>(JournalRecord::Kind::kCancelled)) {
      throw core::SerializeError("unknown journal record kind " +
                                 std::to_string(kind));
    }
    r.kind = static_cast<JournalRecord::Kind>(kind);
    r.id = take_string(bytes, pos, body);
    switch (r.kind) {
      case JournalRecord::Kind::kSubmit:
        r.s1 = take_string(bytes, pos, body);
        r.s2 = take_string(bytes, pos, body);
        r.params.unit_weights = take_pod<std::uint8_t>(bytes, pos, body) != 0;
        r.params.min_hairpin =
            take_pod<std::int32_t>(bytes, pos, body);
        r.params.reverse = take_pod<std::uint8_t>(bytes, pos, body) != 0;
        if (version >= 2) {
          r.tenant = take_string(bytes, pos, body);
          r.deadline_s = take_pod<double>(bytes, pos, body);
        }
        if (version >= 3) {
          r.params.algebra = static_cast<semiring::Algebra>(
              take_pod<std::uint8_t>(bytes, pos, body));
          r.params.temperature = take_pod<double>(bytes, pos, body);
        }
        break;
      case JournalRecord::Kind::kDone:
        r.outcome = take_outcome(bytes, pos, body, version);
        break;
      case JournalRecord::Kind::kFailed:
        r.error = take_string(bytes, pos, body);
        break;
      case JournalRecord::Kind::kStart:
      case JournalRecord::Kind::kCancelled:
        break;
    }
    records.push_back(std::move(r));
  }
  if (pos != body) {
    throw core::SerializeError("trailing bytes in job journal");
  }
  return records;
}

JobStore::JobStore(mpisim::BlobStore* store) : store_(store) {}

std::vector<std::string> JobStore::recover() {
  std::vector<std::string> requeued;
  if (store_ == nullptr) {
    return requeued;
  }
  std::optional<std::vector<JournalRecord>> replay;
  for (const std::string& blob : store_->blobs()) {
    try {
      replay = decode_journal(blob);
      break;
    } catch (const core::SerializeError&) {
      RRI_OBS_COUNTER("serve.daemon.journal_corrupt", 1);
    }
  }
  if (!replay.has_value()) {
    // Nothing decodable: drop any stale/corrupt blobs so their sequence
    // numbers can never shadow this run's fresh appends.
    store_->clear();
    return requeued;
  }
  journal_.clear();
  jobs_.clear();
  submit_order_.clear();
  for (JournalRecord& r : *replay) {
    apply(r);
    journal_.push_back(std::move(r));
  }
  seq_ = journal_.size();
  // An interrupted run: whatever was running when the process died has
  // no recorded outcome, so it folds back to queued for re-execution
  // (at-least-once; the kernels are deterministic).
  for (const std::string& id : submit_order_) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      continue;
    }
    if (it->second.state == JobState::kRunning) {
      it->second.state = JobState::kQueued;
    }
    if (it->second.state == JobState::kQueued) {
      requeued.push_back(id);
    }
  }
  RRI_OBS_COUNTER("serve.daemon.jobs_replayed",
                  static_cast<double>(jobs_.size()));
  RRI_OBS_COUNTER("serve.daemon.jobs_requeued",
                  static_cast<double>(requeued.size()));
  return requeued;
}

void JobStore::append(JournalRecord record) {
  apply(record);
  journal_.push_back(std::move(record));
  if (store_ != nullptr) {
    // The whole journal every time: blob N supersedes blob N-1, so the
    // keep-last-K store always holds a complete history and a torn
    // newest write falls back to the previous complete one.
    store_->put_blob(++seq_, encode_journal(journal_));
    RRI_OBS_COUNTER("serve.daemon.journal_appends", 1);
  }
}

StoredJob* JobStore::apply(const JournalRecord& record) {
  switch (record.kind) {
    case JournalRecord::Kind::kSubmit: {
      StoredJob stored;
      stored.job.id = record.id;
      stored.job.s1 = rna::Sequence::from_string(record.s1);
      stored.job.s2 = rna::Sequence::from_string(record.s2);
      stored.job.params = record.params;
      stored.job.tenant = record.tenant;
      stored.job.deadline_s = record.deadline_s;
      stored.state = JobState::kQueued;
      auto [it, inserted] = jobs_.emplace(record.id, std::move(stored));
      if (inserted) {
        submit_order_.push_back(record.id);
      }
      return &it->second;
    }
    case JournalRecord::Kind::kStart: {
      auto it = jobs_.find(record.id);
      if (it != jobs_.end()) {
        it->second.state = JobState::kRunning;
      }
      return it != jobs_.end() ? &it->second : nullptr;
    }
    case JournalRecord::Kind::kDone: {
      auto it = jobs_.find(record.id);
      if (it != jobs_.end()) {
        it->second.state = JobState::kDone;
        it->second.outcome = record.outcome;
      }
      return it != jobs_.end() ? &it->second : nullptr;
    }
    case JournalRecord::Kind::kFailed: {
      auto it = jobs_.find(record.id);
      if (it != jobs_.end()) {
        it->second.state = JobState::kFailed;
        it->second.error = record.error;
      }
      return it != jobs_.end() ? &it->second : nullptr;
    }
    case JournalRecord::Kind::kCancelled: {
      auto it = jobs_.find(record.id);
      if (it != jobs_.end()) {
        it->second.state = JobState::kCancelled;
      }
      return it != jobs_.end() ? &it->second : nullptr;
    }
  }
  return nullptr;
}

bool JobStore::submit(const Job& job) {
  if (jobs_.find(job.id) != jobs_.end()) {
    return false;
  }
  JournalRecord r;
  r.kind = JournalRecord::Kind::kSubmit;
  r.id = job.id;
  r.s1 = job.s1.to_string();
  r.s2 = job.s2.to_string();
  r.params = job.params;
  r.tenant = job.tenant;
  r.deadline_s = job.deadline_s;
  append(std::move(r));
  return true;
}

bool JobStore::mark_running(const std::string& id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != JobState::kQueued) {
    return false;
  }
  JournalRecord r;
  r.kind = JournalRecord::Kind::kStart;
  r.id = id;
  append(std::move(r));
  return true;
}

void JobStore::mark_done(const std::string& id, const JobOutcome& outcome) {
  JournalRecord r;
  r.kind = JournalRecord::Kind::kDone;
  r.id = id;
  r.outcome = outcome;
  append(std::move(r));
}

void JobStore::mark_failed(const std::string& id, const std::string& error) {
  JournalRecord r;
  r.kind = JournalRecord::Kind::kFailed;
  r.id = id;
  r.error = error;
  append(std::move(r));
}

bool JobStore::cancel(const std::string& id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.state != JobState::kQueued) {
    return false;
  }
  JournalRecord r;
  r.kind = JournalRecord::Kind::kCancelled;
  r.id = id;
  append(std::move(r));
  return true;
}

const StoredJob* JobStore::find(const std::string& id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

std::vector<std::string> JobStore::queued_ids() const {
  std::vector<std::string> ids;
  for (const std::string& id : submit_order_) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end() && it->second.state == JobState::kQueued) {
      ids.push_back(id);
    }
  }
  return ids;
}

JobCounts JobStore::counts() const {
  JobCounts c;
  for (const auto& [id, stored] : jobs_) {
    switch (stored.state) {
      case JobState::kQueued: ++c.queued; break;
      case JobState::kRunning: ++c.running; break;
      case JobState::kDone: ++c.done; break;
      case JobState::kFailed: ++c.failed; break;
      case JobState::kCancelled: ++c.cancelled; break;
    }
  }
  return c;
}

}  // namespace rri::serve
