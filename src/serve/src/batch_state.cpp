#include "rri/serve/batch_state.hpp"

#include <cstring>

#include "rri/core/crc32.hpp"
#include "rri/core/serialize.hpp"
#include "rri/obs/obs.hpp"

namespace rri::serve {
namespace {

constexpr char kMagic[4] = {'R', 'R', 'B', 'S'};
/// v2 appends the algebra tag + log_z to each outcome (mirroring RRJL
/// v3); v1 checkpoints decode with the tropical defaults.
constexpr std::uint32_t kVersionLegacy = 1;
constexpr std::uint32_t kVersion = 2;

template <typename T>
void append_pod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T take_pod(const std::string& bytes, std::size_t& pos, std::size_t end) {
  if (pos + sizeof(T) > end) {
    throw core::SerializeError("truncated batch state");
  }
  T value{};
  std::memcpy(&value, bytes.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

void append_string(std::string& out, const std::string& s) {
  append_pod(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

std::string take_string(const std::string& bytes, std::size_t& pos,
                        std::size_t end) {
  const auto len = take_pod<std::uint32_t>(bytes, pos, end);
  if (pos + len > end) {
    throw core::SerializeError("truncated batch state");
  }
  std::string s = bytes.substr(pos, len);
  pos += len;
  return s;
}

}  // namespace

std::uint32_t manifest_digest(const std::vector<Job>& jobs) {
  core::Crc32 crc;
  for (const Job& job : jobs) {
    crc.update(job.id.data(), job.id.size());
    crc.update("\x1f", 1);
    const std::string key = job_key_text(job);
    crc.update(key.data(), key.size());
    crc.update("\x1e", 1);
  }
  return crc.value();
}

std::string encode_batch_state(const BatchState& state) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  append_pod(out, kVersion);
  append_pod(out, state.manifest_digest);
  append_pod(out, static_cast<std::uint32_t>(state.completed.size()));
  for (const JobOutcome& o : state.completed) {
    append_string(out, o.id);
    append_pod(out, o.key);
    append_pod(out, static_cast<std::int32_t>(o.m));
    append_pod(out, static_cast<std::int32_t>(o.n));
    append_pod(out, o.score);
    append_pod(out, static_cast<std::uint8_t>(o.cache_hit ? 1 : 0));
    append_pod(out, static_cast<std::uint8_t>(o.rejected ? 1 : 0));
    append_pod(out, o.seconds);
    append_pod(out, static_cast<std::uint8_t>(o.algebra));
    append_pod(out, o.log_z);
  }
  append_pod(out, core::crc32(out.data(), out.size()));
  return out;
}

BatchState decode_batch_state(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + sizeof(std::uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw core::SerializeError("not an RRBS batch state (bad magic)");
  }
  // Integrity first: everything after this line may trust the bytes.
  const std::size_t body = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t footer = 0;
  std::memcpy(&footer, bytes.data() + body, sizeof(footer));
  const std::uint32_t computed = core::crc32(bytes.data(), body);
  if (footer != computed) {
    throw core::SerializeError(
        "batch state checksum mismatch (stored CRC32 " +
        std::to_string(footer) + ", computed " + std::to_string(computed) +
        ")");
  }
  std::size_t pos = sizeof(kMagic);
  const auto version = take_pod<std::uint32_t>(bytes, pos, body);
  if (version != kVersion && version != kVersionLegacy) {
    throw core::SerializeError("unsupported RRBS version " +
                               std::to_string(version));
  }
  BatchState state;
  state.manifest_digest = take_pod<std::uint32_t>(bytes, pos, body);
  const auto count = take_pod<std::uint32_t>(bytes, pos, body);
  state.completed.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    JobOutcome o;
    o.id = take_string(bytes, pos, body);
    o.key = take_pod<std::uint32_t>(bytes, pos, body);
    o.m = take_pod<std::int32_t>(bytes, pos, body);
    o.n = take_pod<std::int32_t>(bytes, pos, body);
    o.score = take_pod<float>(bytes, pos, body);
    o.cache_hit = take_pod<std::uint8_t>(bytes, pos, body) != 0;
    o.rejected = take_pod<std::uint8_t>(bytes, pos, body) != 0;
    o.seconds = take_pod<double>(bytes, pos, body);
    if (version >= 2) {
      o.algebra = static_cast<semiring::Algebra>(
          take_pod<std::uint8_t>(bytes, pos, body));
      o.log_z = take_pod<double>(bytes, pos, body);
    }
    state.completed.push_back(std::move(o));
  }
  if (pos != body) {
    throw core::SerializeError("trailing bytes in batch state");
  }
  return state;
}

std::optional<BatchState> latest_batch_state(mpisim::BlobStore& store) {
  for (const std::string& blob : store.blobs()) {
    try {
      return decode_batch_state(blob);
    } catch (const core::SerializeError&) {
      RRI_OBS_COUNTER("serve.checkpoints_corrupt", 1);
    }
  }
  return std::nullopt;
}

}  // namespace rri::serve
