#include "rri/serve/protocol.hpp"

#include <cstdio>
#include <cstring>

#include "rri/obs/json.hpp"

namespace rri::serve {
namespace {

std::uint32_t load_be32(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
}

void store_be32(std::uint32_t v, char* p) {
  p[0] = static_cast<char>((v >> 24) & 0xff);
  p[1] = static_cast<char>((v >> 16) & 0xff);
  p[2] = static_cast<char>((v >> 8) & 0xff);
  p[3] = static_cast<char>(v & 0xff);
}

}  // namespace

std::string encode_frame(const std::string& payload, std::size_t max_frame) {
  if (payload.size() > max_frame) {
    throw ProtocolError("oversized_frame",
                        "frame payload of " + std::to_string(payload.size()) +
                            " bytes exceeds the " +
                            std::to_string(max_frame) + "-byte budget");
  }
  std::string out;
  out.resize(kFrameHeaderBytes);
  store_be32(static_cast<std::uint32_t>(payload.size()), out.data());
  out += payload;
  return out;
}

void FrameReader::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<std::string> FrameReader::next() {
  if (poisoned_) {
    throw ProtocolError("oversized_frame",
                        "frame stream poisoned by an oversized frame");
  }
  if (buffer_.size() < kFrameHeaderBytes) {
    return std::nullopt;
  }
  const std::uint32_t declared = load_be32(buffer_.data());
  if (declared > max_frame_) {
    // The declared length is the only framing information there is; once
    // it is implausible the stream offset can never be re-synchronized.
    poisoned_ = true;
    throw ProtocolError("oversized_frame",
                        "declared frame length " + std::to_string(declared) +
                            " exceeds the " + std::to_string(max_frame_) +
                            "-byte budget");
  }
  if (buffer_.size() < kFrameHeaderBytes + declared) {
    return std::nullopt;
  }
  std::string payload = buffer_.substr(kFrameHeaderBytes, declared);
  buffer_.erase(0, kFrameHeaderBytes + declared);
  return payload;
}

const char* verb_name(Verb verb) noexcept {
  switch (verb) {
    case Verb::kSubmit: return "submit";
    case Verb::kStatus: return "status";
    case Verb::kResult: return "result";
    case Verb::kCancel: return "cancel";
    case Verb::kDrain: return "drain";
    case Verb::kStats: return "stats";
    case Verb::kPing: return "ping";
    case Verb::kMetrics: return "metrics";
    case Verb::kSlo: return "slo";
  }
  return "?";
}

Request parse_request(const std::string& payload, const JobParams& defaults) {
  obs::JsonValue doc;
  try {
    doc = obs::json_parse(payload);
  } catch (const obs::JsonError& e) {
    throw ProtocolError("bad_json", std::string("payload is not JSON: ") +
                                        e.what());
  }
  if (!doc.is(obs::JsonValue::Type::kObject)) {
    throw ProtocolError("bad_request", "payload must be a JSON object");
  }
  const obs::JsonValue* op = doc.find("op");
  if (op == nullptr || !op->is(obs::JsonValue::Type::kString)) {
    throw ProtocolError("bad_request", "request needs a string \"op\"");
  }
  Request req;
  const std::string& name = op->as_string();
  if (name == "submit") {
    req.verb = Verb::kSubmit;
  } else if (name == "status") {
    req.verb = Verb::kStatus;
  } else if (name == "result") {
    req.verb = Verb::kResult;
  } else if (name == "cancel") {
    req.verb = Verb::kCancel;
  } else if (name == "drain") {
    req.verb = Verb::kDrain;
  } else if (name == "stats") {
    req.verb = Verb::kStats;
  } else if (name == "ping") {
    req.verb = Verb::kPing;
  } else if (name == "metrics") {
    req.verb = Verb::kMetrics;
  } else if (name == "slo") {
    req.verb = Verb::kSlo;
  } else {
    throw ProtocolError("bad_request", "unknown op \"" + name +
                                           "\" (known: submit, status, "
                                           "result, cancel, drain, stats, "
                                           "ping, metrics, slo)");
  }

  if (const obs::JsonValue* id = doc.find("id")) {
    if (!id->is(obs::JsonValue::Type::kString)) {
      throw ProtocolError("bad_request", "\"id\" must be a string");
    }
    req.id = id->as_string();
  }
  const bool id_required = req.verb == Verb::kSubmit ||
                           req.verb == Verb::kResult ||
                           req.verb == Verb::kCancel;
  if (id_required && req.id.empty()) {
    throw ProtocolError("bad_request", std::string("\"") + name +
                                           "\" needs a non-empty \"id\"");
  }

  if (const obs::JsonValue* wait = doc.find("wait")) {
    if (!wait->is(obs::JsonValue::Type::kBool)) {
      throw ProtocolError("bad_request", "\"wait\" must be a boolean");
    }
    req.wait = wait->as_bool();
  }

  if (req.verb == Verb::kSubmit) {
    const obs::JsonValue* s1 = doc.find("s1");
    const obs::JsonValue* s2 = doc.find("s2");
    if (s1 == nullptr || s2 == nullptr ||
        !s1->is(obs::JsonValue::Type::kString) ||
        !s2->is(obs::JsonValue::Type::kString)) {
      throw ProtocolError("bad_request",
                          "submit needs string \"s1\" and \"s2\" strands");
    }
    req.job.id = req.id;
    try {
      req.job.s1 = rna::Sequence::from_string(s1->as_string());
      req.job.s2 = rna::Sequence::from_string(s2->as_string());
    } catch (const rna::ParseError& e) {
      throw ProtocolError("bad_sequence", e.what());
    }
    if (req.job.s1.empty() || req.job.s2.empty()) {
      throw ProtocolError("bad_sequence", "strands must be non-empty");
    }
    if (const obs::JsonValue* tenant = doc.find("tenant")) {
      if (!tenant->is(obs::JsonValue::Type::kString)) {
        throw ProtocolError("bad_request", "\"tenant\" must be a string");
      }
      req.job.tenant = tenant->as_string();
    }
    if (const obs::JsonValue* deadline = doc.find("deadline_s")) {
      if (!deadline->is(obs::JsonValue::Type::kNumber) ||
          !(deadline->as_number() >= 0.0)) {
        throw ProtocolError("bad_request",
                            "\"deadline_s\" must be a number >= 0");
      }
      req.job.deadline_s = deadline->as_number();
    }
    req.job.params = defaults;
    if (const obs::JsonValue* p = doc.find("params")) {
      if (!p->is(obs::JsonValue::Type::kObject)) {
        throw ProtocolError("bad_request", "\"params\" must be an object");
      }
      for (const auto& [key, value] : p->as_object()) {
        try {
          if (key == "unit-weights") {
            req.job.params.unit_weights = value.as_bool();
          } else if (key == "min-hairpin") {
            req.job.params.min_hairpin = static_cast<int>(value.as_number());
          } else if (key == "no-reverse") {
            req.job.params.reverse = !value.as_bool();
          } else if (key == "algebra") {
            const auto algebra = semiring::parse_algebra(value.as_string());
            if (!algebra.has_value()) {
              throw ProtocolError("bad_request",
                                  "unknown algebra \"" + value.as_string() +
                                      "\" (known: tropical, logsumexp)");
            }
            req.job.params.algebra = *algebra;
          } else if (key == "temperature") {
            if (!(value.as_number() > 0.0)) {
              throw ProtocolError("bad_request",
                                  "\"temperature\" must be a number > 0");
            }
            req.job.params.temperature = value.as_number();
          } else {
            throw ProtocolError("bad_request",
                                "unknown param \"" + key + "\"");
          }
        } catch (const obs::JsonError&) {
          throw ProtocolError("bad_request",
                              "bad value for param \"" + key + "\"");
        }
      }
    }
  }
  return req;
}

std::string submit_payload(const Job& job) {
  std::string out = "{\"op\":\"submit\",\"id\":\"";
  out += obs::json_escape(job.id);
  out += "\",\"s1\":\"";
  out += job.s1.to_string();
  out += "\",\"s2\":\"";
  out += job.s2.to_string();
  out += "\",\"params\":{\"unit-weights\":";
  out += job.params.unit_weights ? "true" : "false";
  out += ",\"min-hairpin\":";
  out += std::to_string(job.params.min_hairpin);
  out += ",\"no-reverse\":";
  out += job.params.reverse ? "false" : "true";
  // Optional v3 fields: emitted only when non-default, so pre-algebra
  // daemons keep accepting the payloads of tropical-only clients.
  if (job.params.algebra != semiring::Algebra::kTropical) {
    out += ",\"algebra\":\"";
    out += semiring::algebra_name(job.params.algebra);
    out += "\"";
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", job.params.temperature);
    out += ",\"temperature\":";
    out += buffer;
  }
  out += "}";
  if (!job.tenant.empty()) {
    out += ",\"tenant\":\"";
    out += obs::json_escape(job.tenant);
    out += "\"";
  }
  if (job.deadline_s > 0.0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", job.deadline_s);
    out += ",\"deadline_s\":";
    out += buffer;
  }
  out += "}\n";
  return out;
}

std::string error_payload(const std::string& op, const std::string& id,
                          const std::string& code,
                          const std::string& message) {
  std::string out = "{\"ok\":false,\"op\":\"";
  out += obs::json_escape(op);
  out += "\"";
  if (!id.empty()) {
    out += ",\"id\":\"";
    out += obs::json_escape(id);
    out += "\"";
  }
  out += ",\"code\":\"";
  out += obs::json_escape(code);
  out += "\",\"error\":\"";
  out += obs::json_escape(message);
  out += "\"}\n";
  return out;
}

std::string error_payload(const std::string& op, const std::string& id,
                          const std::string& code, const std::string& message,
                          double retry_after_s) {
  std::string out = error_payload(op, id, code, message);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", retry_after_s);
  // Splice before the closing "}\n" so the field order stays stable.
  out.insert(out.size() - 2,
             std::string(",\"retry_after_s\":") + buffer);
  return out;
}

}  // namespace rri::serve
