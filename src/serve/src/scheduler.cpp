#include "rri/serve/scheduler.hpp"

#include <algorithm>
#include <queue>

#include "rri/core/crc32.hpp"

namespace rri::serve {
namespace {

/// Deterministic 64-bit mix of (seed, id) for cost-tie ordering:
/// splitmix64 over the seed xor the id's CRC-32. No platform-dependent
/// std::hash — the plan must be identical across hosts.
std::uint64_t tie_break(std::uint64_t seed, const std::string& id) {
  std::uint64_t z = seed ^ core::crc32(id.data(), id.size());
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

double job_table_bytes(std::size_t m, std::size_t n,
                       std::size_t elem_bytes) {
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  return dm * dm * dn * dn * static_cast<double>(elem_bytes);
}

std::size_t job_elem_bytes(const Job& job) noexcept {
  return job.params.algebra == semiring::Algebra::kLogSumExp
             ? sizeof(double)
             : sizeof(float);
}

double job_table_bytes(const Job& job) {
  return job_table_bytes(job.s1.size(), job.s2.size(), job_elem_bytes(job));
}

double job_cost_flops(std::size_t m, std::size_t n) {
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  return dm * dm * dm * dn * dn * dn;
}

Schedule plan_schedule(const std::vector<Job>& jobs,
                       const ScheduleConfig& config) {
  const int workers = config.workers < 1 ? 1 : config.workers;

  struct Keyed {
    PlannedJob planned;
    std::uint64_t tie;
  };
  std::vector<Keyed> admitted;
  admitted.reserve(jobs.size());

  Schedule schedule;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    PlannedJob p;
    p.job_index = i;
    p.cost_flops = job_cost_flops(jobs[i].s1.size(), jobs[i].s2.size());
    p.table_bytes = job_table_bytes(jobs[i]);
    if (config.worker_budget_bytes > 0.0 &&
        p.table_bytes > config.worker_budget_bytes) {
      schedule.rejected.push_back(i);
      continue;
    }
    admitted.push_back({p, tie_break(config.seed, jobs[i].id)});
  }

  // Largest first; cost ties by seeded hash, then manifest order so the
  // sort is a total order even for identical ids.
  std::sort(admitted.begin(), admitted.end(),
            [](const Keyed& a, const Keyed& b) {
              if (a.planned.cost_flops != b.planned.cost_flops) {
                return a.planned.cost_flops > b.planned.cost_flops;
              }
              if (a.tie != b.tie) {
                return a.tie < b.tie;
              }
              return a.planned.job_index < b.planned.job_index;
            });

  // LPT assignment: each job to the predicted least-loaded worker
  // (lowest id on load ties).
  schedule.worker_load.assign(static_cast<std::size_t>(workers), 0.0);
  using Load = std::pair<double, int>;  // (load, worker)
  std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
  for (int w = 0; w < workers; ++w) {
    heap.push({0.0, w});
  }
  schedule.order.reserve(admitted.size());
  for (Keyed& k : admitted) {
    const auto [load, w] = heap.top();
    heap.pop();
    k.planned.worker = w;
    schedule.worker_load[static_cast<std::size_t>(w)] =
        load + k.planned.cost_flops;
    heap.push({load + k.planned.cost_flops, w});
    schedule.order.push_back(k.planned);
  }
  return schedule;
}

}  // namespace rri::serve
