#ifndef RRI_SERVE_DAEMON_HPP
#define RRI_SERVE_DAEMON_HPP

/// \file daemon.hpp
/// The long-running serving daemon behind tools/rri_served: a TCP
/// listener speaking the length-prefixed JSONL frame protocol
/// (protocol.hpp), a journaled JobStore (jobstore.hpp) so accepted work
/// survives `kill -9`, and a streaming worker pool — the batch engine's
/// lifecycle reworked from "drain one manifest, then exit" to "serve
/// until asked to stop". The scheduler's closed-form cost model gates
/// admission: a job whose F-table exceeds the budget is refused at
/// submit time with a structured error frame instead of an OOM kill
/// mid-flight. Duplicate submissions of served pairs hit the same
/// ResultCache the batch engine uses.
///
/// Lifecycle: start() binds + listens; run() serves until a `drain`
/// frame arrives or the configured stop flag goes true (the SIGTERM /
/// SIGINT path in rri_served). Drain stops intake, lets the workers
/// finish everything accepted, journals the final states, closes the
/// connections, and returns — the tool then exits 0. A `kill -9`
/// instead of a drain is the crash path: on the next start, recover()
/// replays the journal, serves completed jobs from their recorded
/// outcomes, and re-enqueues the interrupted ones.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rri/core/bpmax.hpp"
#include "rri/mpisim/checkpoint.hpp"
#include "rri/obs/flight.hpp"
#include "rri/obs/metrics.hpp"
#include "rri/obs/slo.hpp"
#include "rri/obs/timeseries.hpp"
#include "rri/serve/cache.hpp"
#include "rri/serve/chaos.hpp"
#include "rri/serve/job.hpp"
#include "rri/serve/jobstore.hpp"
#include "rri/serve/protocol.hpp"
#include "rri/serve/queue.hpp"
#include "rri/serve/tenant.hpp"

namespace rri::serve {

struct DaemonConfig {
  std::string host = "127.0.0.1";
  /// 0 = let the kernel pick an ephemeral port; start() returns it.
  int port = 0;
  int workers = 1;
  /// OpenMP threads per kernel run (the grain, as in EngineConfig).
  int kernel_threads = 1;
  core::Variant variant = core::Variant::kHybridTiled;
  core::TileShape3 tile{};
  /// ResultCache byte budget; 0 disables memoization.
  std::size_t cache_bytes = 64u << 20;
  /// Admission control: a job whose F-table (closed form, the --max-mem
  /// model) exceeds this is rejected at submit. 0 = unlimited.
  double job_budget_bytes = 0.0;
  /// Defaults merged under each submit's "params" object.
  JobParams param_defaults{};
  /// Journal persistence; null = in-memory only (no crash durability).
  mpisim::BlobStore* journal_store = nullptr;
  /// Worker-queue capacity; 0 = max(64, 4 x workers). Submits beyond it
  /// block the submitting connection (backpressure), never drop work.
  std::size_t queue_capacity = 0;
  /// External stop request (SIGTERM/SIGINT handler sets it); polled by
  /// the accept loop a few times a second. Equivalent to `drain`.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Test/CI hook mirroring EngineConfig::max_jobs: once this many jobs
  /// finish in this run, stop executing (journal intact, queued jobs
  /// left queued) and return — a deterministic in-process stand-in for
  /// `kill -9`. <0 = no limit.
  int fail_after = -1;
  /// Per-tenant quota buckets (--tenant-config). Default-constructed =
  /// every tenant unlimited; the governor still runs, so the stats verb
  /// always reports per-tenant tallies.
  TenantConfig tenant_config{};
  /// Queue-depth high watermark: a submit arriving while the worker
  /// queue holds at least this many jobs is shed with an "overloaded"
  /// error carrying retry_after_s. 0 = never shed (backpressure only).
  std::size_t shed_queue_depth = 0;
  /// Per-connection read timeout: a connection that delivers no bytes
  /// for this long is answered with an "idle_timeout" error frame and
  /// closed, so a slowloris client cannot pin a connection thread.
  /// 0 = wait forever (the pre-quota behavior).
  double idle_timeout_s = 0.0;
  /// Socket fault injection on the daemon's read/write paths
  /// (RRI_CHAOS= in rri_served). Empty = no chaos.
  ChaosPlan chaos{};
  /// Prometheus `GET /metrics` HTTP/1.0 listener on the same host:
  /// -1 = off, 0 = ephemeral (metrics_port() returns it after start()).
  /// The `metrics` protocol verb works regardless of this setting.
  int metrics_port = -1;
  /// Telemetry tick: time-series sampling + SLO evaluation period.
  double telemetry_interval_s = 1.0;
  /// JSONL SLO objectives (--slo-config); "" = no objectives.
  std::string slo_config;
  /// Flight-recorder output directory (--flight-dir); "" = no dumps.
  std::string flight_dir;
  /// Trailing series window captured per flight dump.
  double flight_window_s = 60.0;
  /// External dump request (the SIGUSR2 handler sets it); polled by the
  /// telemetry tick, which dumps once and clears the flag.
  std::atomic<bool>* flight_flag = nullptr;
};

struct DaemonStats {
  JobCounts jobs;                    ///< at shutdown
  std::size_t connections = 0;       ///< accepted over the lifetime
  std::size_t frames = 0;            ///< request frames handled
  std::size_t protocol_errors = 0;   ///< frames answered with an error
  std::size_t jobs_submitted = 0;    ///< accepted this run
  std::size_t jobs_rejected = 0;     ///< refused by admission control
  std::size_t jobs_executed = 0;     ///< kernel runs this run
  std::size_t jobs_replayed = 0;     ///< terminal jobs adopted from journal
  std::size_t jobs_requeued = 0;     ///< interrupted jobs re-enqueued
  std::size_t quota_rejections = 0;  ///< submits refused by tenant quotas
  std::size_t shed_overload = 0;     ///< submits shed at the queue watermark
  std::size_t shed_deadline = 0;     ///< jobs shed expired at dequeue
  std::size_t idle_timeouts = 0;     ///< connections closed for idleness
  std::size_t chaos_events = 0;      ///< injected stalls + splits + resets
  bool interrupted = false;          ///< stopped by fail_after
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Replay the journal, bind and listen. Returns the bound port.
  /// Throws std::runtime_error when the socket cannot be set up.
  int start();

  /// Serve until drain (verb, stop flag, or request_drain()) or the
  /// fail_after hook. Blocks; returns after the shutdown sequence.
  void run();

  /// Ask a running daemon to drain (thread-safe; idempotent).
  void request_drain();

  int port() const noexcept { return port_; }
  /// Bound /metrics HTTP port (0 until start(), or with metrics off).
  int metrics_port() const noexcept { return metrics_port_; }
  DaemonStats stats() const;

 private:
  struct Connection;

  /// Admission metadata kept from submit until the job goes terminal:
  /// the timestamp feeds the serve.queue_wait_s histograms and the
  /// deadline check at dequeue; tenant + table_bytes are what finish()
  /// releases back to the governor. Ephemeral by design — a restart
  /// re-admits recovered jobs with a fresh clock and no deadline.
  struct Admission {
    std::chrono::steady_clock::time_point at{};
    double deadline_s = 0.0;
    std::string tenant;
    double table_bytes = 0.0;
  };

  void accept_loop();
  void worker_loop(int worker_id);
  void handle_connection(Connection* conn);
  /// One response frame through the chaos plan (stall / split / reset).
  /// False when the write failed or chaos reset the connection.
  bool send_frame(Connection* conn, const std::string& payload);
  std::string handle_request(const Request& req, bool* drain_out);
  std::string submit_response(const Request& req);
  std::string result_response(const Request& req);
  JobOutcome execute(const Job& job);
  void finish_remaining_inline();
  /// Record admission bookkeeping for a job (mutex_ held).
  void record_admission_locked(const Job& job, double table_bytes);
  /// Release a job's admission back to the governor (mutex_ held).
  void release_admission_locked(const std::string& id);
  /// Shed `id` as deadline_exceeded when it expired while queued
  /// (mutex_ held). True when the job was shed.
  bool shed_if_expired_locked(const std::string& id);
  /// Monotonic seconds since run() started (the telemetry time base).
  double uptime_s() const;
  /// Refresh the set-semantics registry gauges a live scrape reads:
  /// uptime, workers, queue depth, per-tenant tallies.
  void publish_runtime_gauges();
  /// Current Prometheus exposition (refreshes the gauges first).
  std::string metrics_exposition();
  /// Telemetry tick thread: sample the time series, evaluate SLOs,
  /// honor the SIGUSR2 flight flag.
  void telemetry_loop();
  /// Minimal HTTP/1.0 loop answering `GET /metrics` on metrics_fd_.
  void metrics_loop();

  DaemonConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;

  mutable std::mutex mutex_;             ///< guards store_/stats_/conns_
  std::condition_variable terminal_cv_;  ///< result-waiters
  JobStore store_;
  ResultCache cache_;
  BoundedQueue<std::string> queue_;
  TenantGovernor governor_;
  DaemonStats stats_;
  std::unordered_map<std::string, Admission> admitted_;
  /// Interrupted jobs recovered by start(), re-enqueued by run().
  std::vector<std::string> requeued_;
  std::size_t finished_this_run_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> interrupted_{false};
  std::atomic<bool> closing_{false};

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::chrono::steady_clock::time_point started_at_{};

  // ---- telemetry plane (docs/observability.md, "Live telemetry") ----
  obs::BuildInfo build_;
  obs::Timeseries timeseries_;
  std::unique_ptr<obs::SloEngine> slo_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  int metrics_fd_ = -1;
  int metrics_port_ = 0;
  std::thread telemetry_thread_;
  std::thread metrics_thread_;
  std::atomic<bool> stop_telemetry_{false};
};

}  // namespace rri::serve

#endif  // RRI_SERVE_DAEMON_HPP
