#ifndef RRI_SERVE_TENANT_HPP
#define RRI_SERVE_TENANT_HPP

/// \file tenant.hpp
/// Per-tenant admission budgets for the serving daemon. Every submit
/// frame may carry an optional "tenant" string; the governor prices the
/// job with the same closed-form F-table model as --max-mem and charges
/// it against that tenant's bucket:
///
///   - a deterministic token-bucket rate limiter (rate_per_s, burst),
///   - a concurrent-job ceiling (jobs admitted but not yet terminal),
///   - an in-flight memory budget (sum of admitted F-table bytes).
///
/// Buckets are configured from a JSONL file (--tenant-config), one
/// object per line, parsed with line-numbered errors exactly like
/// manifests:
///
///   {"tenant":"acme","rate_per_s":2,"burst":4,"max_concurrent":8,
///    "max_mem_gib":0.5}
///
/// The reserved name "default" configures the bucket that every tenant
/// not listed in the file (including the anonymous "" tenant) gets a
/// private instance of. A zero on any field means "unlimited" for that
/// dimension, so an empty config admits everything — the governor is
/// always in the submit path and costs one map lookup when idle.
///
/// Determinism: the governor never reads a clock itself; callers pass
/// monotonic seconds into admit(), so tests drive it with a fake clock
/// and identical call sequences produce identical decisions and
/// retry_after_s hints.
///
/// Not thread-safe by itself: the daemon serializes access under its
/// state mutex, same as JobStore.

#include <cstdint>
#include <istream>
#include <map>
#include <string>

namespace rri::serve {

/// Budgets for one tenant bucket. Default-constructed = unlimited.
struct TenantLimits {
  double rate_per_s = 0.0;   ///< token refill per second; 0 = unlimited
  double burst = 1.0;        ///< bucket capacity in jobs (>= 1)
  int max_concurrent = 0;    ///< admitted-but-not-terminal cap; 0 = unlimited
  double max_mem_bytes = 0.0;  ///< in-flight F-table byte cap; 0 = unlimited

  friend bool operator==(const TenantLimits&, const TenantLimits&) = default;
};

/// Parsed --tenant-config file.
struct TenantConfig {
  TenantLimits default_limits{};  ///< bucket template for unlisted tenants
  std::map<std::string, TenantLimits> tenants;

  /// Parse JSONL tenant config. Throws rna::ParseError with a 1-based
  /// line number on bad JSON, unknown keys, non-finite or negative
  /// rates, burst < 1, or duplicate tenant names. Blank lines and '#'
  /// comments are skipped, CRLF tolerated — the manifest conventions.
  static TenantConfig parse(std::istream& in);
  static TenantConfig load_file(const std::string& path);

  const TenantLimits& limits_for(const std::string& tenant) const;
};

/// One admit() verdict. When refused, `reason` is the machine-readable
/// dimension and `retry_after_s` the computed wait the error frame
/// carries back to the client.
struct QuotaDecision {
  bool admitted = true;
  std::string reason;   ///< "rate" | "concurrency" | "memory"
  std::string message;  ///< human text for the error frame
  double retry_after_s = 0.0;
};

/// Per-tenant tallies for the stats verb and shutdown counters.
struct TenantUsage {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t finished = 0;
  int inflight_jobs = 0;
  double inflight_bytes = 0.0;
};

class TenantGovernor {
 public:
  TenantGovernor() = default;
  explicit TenantGovernor(TenantConfig config);

  /// Charge one job of `table_bytes` against `tenant` at monotonic time
  /// `now_s`. On success the token is consumed and the job is counted
  /// in flight; call finish() exactly once when it reaches a terminal
  /// state. On refusal nothing is consumed.
  QuotaDecision admit(const std::string& tenant, double table_bytes,
                      double now_s);

  /// Account a job that was already admitted in a previous run (journal
  /// replay) without a token draw — restarting the daemon must not
  /// rate-penalize recovered work.
  void adopt(const std::string& tenant, double table_bytes, double now_s);

  /// Release one admitted job (done / failed / cancelled / shed).
  void finish(const std::string& tenant, double table_bytes);

  /// Tallies per tenant seen so far, in name order.
  std::map<std::string, TenantUsage> usage() const;

 private:
  struct Bucket {
    TenantLimits limits;
    double tokens = 0.0;
    double refilled_at_s = 0.0;
    TenantUsage usage;
  };
  Bucket& bucket_for(const std::string& tenant, double now_s);
  static void refill(Bucket& b, double now_s);

  TenantConfig config_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace rri::serve

#endif  // RRI_SERVE_TENANT_HPP
