#ifndef RRI_SERVE_BATCH_STATE_HPP
#define RRI_SERVE_BATCH_STATE_HPP

/// \file batch_state.hpp
/// Persistent batch progress: which jobs of a manifest have finished,
/// with their recorded outcomes. Stored through the mpisim BlobStore
/// layer (FileBlobStore for the CLI, MemoryBlobStore in tests) as
/// "RRBS" blobs — a magic + version header, the manifest digest, the
/// outcome list, and a CRC-32 footer over every preceding byte, exactly
/// the RRCK checkpoint pattern. A torn or bit-flipped blob fails decode
/// with core::SerializeError and the reader falls back to the previous
/// one (keep-last-K).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rri/mpisim/checkpoint.hpp"
#include "rri/serve/job.hpp"

namespace rri::serve {

struct BatchState {
  /// Digest of the manifest this state belongs to (manifest_digest);
  /// resuming against a different manifest is refused.
  std::uint32_t manifest_digest = 0;
  /// Outcomes of finished jobs, in completion order.
  std::vector<JobOutcome> completed;
};

/// CRC-32 over every job's id and canonical key text, in manifest
/// order. Two manifests with the same digest describe the same batch.
std::uint32_t manifest_digest(const std::vector<Job>& jobs);

/// Serialize with the CRC-32 footer described above.
std::string encode_batch_state(const BatchState& state);

/// Parse + integrity-check; throws core::SerializeError on a bad magic,
/// torn tail, CRC mismatch, or inconsistent fields.
BatchState decode_batch_state(const std::string& bytes);

/// Newest stored state that decodes and CRC-validates, skipping (and
/// counting, obs "serve.checkpoints_corrupt") corrupted blobs.
std::optional<BatchState> latest_batch_state(mpisim::BlobStore& store);

}  // namespace rri::serve

#endif  // RRI_SERVE_BATCH_STATE_HPP
