#ifndef RRI_SERVE_QUEUE_HPP
#define RRI_SERVE_QUEUE_HPP

/// \file queue.hpp
/// Bounded multi-producer/multi-consumer job queue with blocking
/// backpressure: push() blocks while the queue is at capacity, so a
/// producer ingesting a huge manifest can never run ahead of the
/// workers by more than `capacity` jobs. Tracks the depth high-water
/// mark for the `serve.queue_depth_hwm` counter.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rri::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks until there is room (backpressure). Returns false if the
  /// queue was closed before the item could be enqueued.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) {
      high_water_ = items_.size();
    }
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained; nullopt means "no more work, ever".
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// No further push() succeeds; consumers drain what is queued, then
  /// pop() returns nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Largest depth ever observed (after any push).
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace rri::serve

#endif  // RRI_SERVE_QUEUE_HPP
