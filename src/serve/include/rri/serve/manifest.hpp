#ifndef RRI_SERVE_MANIFEST_HPP
#define RRI_SERVE_MANIFEST_HPP

/// \file manifest.hpp
/// Batch ingestion and result emission. Two ways in:
///  * a JSONL manifest — one job per line:
///      {"id":"j1","s1":"GGGAAACCC","s2":"uugccaagg",
///       "params":{"unit-weights":false,"min-hairpin":0,"no-reverse":false}}
///    ("params" and every field inside it are optional; sequences accept
///    lowercase and DNA 'T', canonicalized to uppercase U);
///  * a pair of multi-record FASTA files — the cross product of targets
///    × guides, ids "<target-name>:<guide-name>".
/// And one way out: results JSONL, one object per job in manifest
/// order, with stable key order so two runs differ only where the data
/// differs ("seconds" is the only non-deterministic field).

#include <iosfwd>
#include <string>
#include <vector>

#include "rri/serve/job.hpp"

namespace rri::serve {

/// Parse a JSONL manifest. Throws rna::ParseError with the 1-based line
/// number on malformed JSON, missing/duplicate ids, or bad sequences.
std::vector<Job> load_manifest(std::istream& in,
                               const JobParams& defaults = {});

/// Parse a JSONL manifest file; throws rna::ParseError if unreadable.
std::vector<Job> load_manifest_file(const std::string& path,
                                    const JobParams& defaults = {});

/// Cross product of two FASTA files: every target record paired with
/// every guide record, ids "<target>:<guide>" (falling back to 1-based
/// record numbers for unnamed records).
std::vector<Job> jobs_from_fasta(const std::string& targets_path,
                                 const std::string& guides_path,
                                 const JobParams& defaults = {});

/// One results line:
///   {"id":"j1","key":"0a1b2c3d","m":9,"n":9,"score":12,
///    "cache_hit":false,"seconds":0.0012}
/// Rejected jobs write "error" instead of score/cache_hit/seconds.
void write_result_line(std::ostream& out, const JobOutcome& outcome);

/// All outcomes, one line each.
void write_results(std::ostream& out, const std::vector<JobOutcome>& outcomes);

}  // namespace rri::serve

#endif  // RRI_SERVE_MANIFEST_HPP
