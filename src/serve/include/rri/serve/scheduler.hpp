#ifndef RRI_SERVE_SCHEDULER_HPP
#define RRI_SERVE_SCHEDULER_HPP

/// \file scheduler.hpp
/// Size-aware admission control and ordering for a batch of BPMax jobs.
/// Costs come from the same closed forms the CLI's --max-mem guard uses:
/// the table of an (M, N) pair is M²N² cells — 4-byte floats for the
/// tropical (BPMax) algebra, 8-byte doubles for log-sum-exp (BPPart) —
/// and the fill is Θ(M³N³) operations. The plan is deterministic for a given
/// (job list, config): jobs are ordered largest-cost-first (LPT), equal
/// costs are tie-broken by a seeded hash of the job id, and each job is
/// assigned to the predicted least-loaded worker. Jobs whose table alone
/// exceeds the per-worker memory budget are rejected up front — a clear
/// per-job error instead of an OOM kill mid-batch.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rri/serve/job.hpp"

namespace rri::serve {

/// Closed-form table footprint in bytes for strand lengths (m, n):
/// M²N² cells of `elem_bytes` each. The element width is the algebra's:
/// tropical BPMax fills float tables, log-sum-exp BPPart doubles.
double job_table_bytes(std::size_t m, std::size_t n,
                       std::size_t elem_bytes = sizeof(float));

/// The footprint of one job, element width chosen by its algebra.
double job_table_bytes(const Job& job);

/// The element width (bytes per table cell) of a job's algebra.
std::size_t job_elem_bytes(const Job& job) noexcept;

/// Closed-form operation count proxy for strand lengths (m, n): the
/// dominant double max-plus band is Θ(M³N³); the constant is irrelevant
/// to ordering, so this returns m³n³.
double job_cost_flops(std::size_t m, std::size_t n);

struct ScheduleConfig {
  int workers = 1;
  /// Per-worker memory budget in bytes (the --max-mem GiB knob). A job
  /// whose table exceeds this is rejected. 0 = unlimited.
  double worker_budget_bytes = 0.0;
  /// Tie-break seed: equal-cost jobs are ordered by a seeded hash of
  /// their id, so re-planning with the same seed reproduces the order
  /// and a different seed reshuffles only within cost ties.
  std::uint64_t seed = 0;
};

struct PlannedJob {
  std::size_t job_index = 0;  ///< into the input job list
  int worker = 0;             ///< predicted executor (LPT assignment)
  double cost_flops = 0.0;
  double table_bytes = 0.0;
};

struct Schedule {
  /// Admission order, largest cost first. Workers popping from one
  /// shared queue in this order approximate the LPT makespan bound even
  /// when actual runtimes drift from the model.
  std::vector<PlannedJob> order;
  /// Predicted flops per worker under the LPT assignment.
  std::vector<double> worker_load;
  /// Indices of jobs rejected by the memory budget, ascending.
  std::vector<std::size_t> rejected;
};

/// Plan a batch. Deterministic: same jobs + same config => same plan.
Schedule plan_schedule(const std::vector<Job>& jobs,
                       const ScheduleConfig& config);

}  // namespace rri::serve

#endif  // RRI_SERVE_SCHEDULER_HPP
