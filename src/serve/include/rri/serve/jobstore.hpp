#ifndef RRI_SERVE_JOBSTORE_HPP
#define RRI_SERVE_JOBSTORE_HPP

/// \file jobstore.hpp
/// The daemon's persistent job table. Every state transition
/// (queued -> running -> done | failed | cancelled) appends one record
/// to an in-memory journal, and the whole journal is synchronously
/// persisted through the BlobStore layer before the mutation is
/// acknowledged — so a submit the daemon has acked is a submit the
/// journal holds, and a `kill -9` at any instant loses no accepted
/// work. Encoding is the repo's standard blob shape: "RRJL" magic +
/// version, the record list, and a CRC-32 footer over every preceding
/// byte; a torn newest blob fails decode and recovery falls back to
/// the previous one (keep-last-K, write-then-rename underneath).
///
/// Recovery folds the journal front to back: terminal jobs keep their
/// recorded outcome (served from the store, never recomputed); jobs
/// that were queued — or running when the process died — return to
/// queued and are re-enqueued. Execution is therefore at-least-once,
/// which is sound because the kernels are deterministic: a re-run
/// reproduces the identical score.
///
/// Not thread-safe by itself: the daemon serializes access under its
/// own state mutex (transitions are microseconds against kernel runs).

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rri/mpisim/checkpoint.hpp"
#include "rri/serve/job.hpp"

namespace rri::serve {

/// Lifecycle of one submitted job.
enum class JobState : std::uint8_t {
  kQueued = 0,  ///< accepted and journaled, awaiting a worker
  kRunning,     ///< a worker is executing it
  kDone,        ///< outcome recorded
  kFailed,      ///< kernel threw; error text recorded
  kCancelled,   ///< withdrawn while still queued
};
const char* job_state_name(JobState state) noexcept;
inline constexpr bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// One journaled transition.
struct JournalRecord {
  enum class Kind : std::uint8_t {
    kSubmit = 0,  ///< carries the job inputs
    kStart,       ///< a worker picked the job up
    kDone,        ///< carries the outcome
    kFailed,      ///< carries the error text
    kCancelled,
  };
  Kind kind = Kind::kSubmit;
  std::string id;
  std::string s1;         ///< kSubmit: canonical strand text
  std::string s2;         ///< kSubmit
  JobParams params;       ///< kSubmit
  std::string tenant;     ///< kSubmit (v2; "" when replaying a v1 journal)
  double deadline_s = 0.0;  ///< kSubmit (v2): Job::deadline_s
  JobOutcome outcome;     ///< kDone
  std::string error;      ///< kFailed
};

/// Serialize / parse the whole journal ("RRJL" v3 + CRC-32 footer).
/// v2 added the tenant name and deadline to submit records; v3 adds the
/// scoring algebra + temperature to submit records and the algebra +
/// log_z to outcomes. Older journals still decode — the missing fields
/// fold to the tropical defaults, which is exactly what those runs
/// computed — so an upgraded daemon replays an old journal.
/// decode throws core::SerializeError on a bad magic, torn tail, CRC
/// mismatch, or inconsistent fields.
std::string encode_journal(const std::vector<JournalRecord>& records);
std::vector<JournalRecord> decode_journal(const std::string& bytes);

/// A job as the store sees it.
struct StoredJob {
  Job job;
  JobState state = JobState::kQueued;
  JobOutcome outcome;  ///< valid when state == kDone
  std::string error;   ///< set when state == kFailed
};

/// Per-state population counts (the status / stats verbs).
struct JobCounts {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t total() const noexcept {
    return queued + running + done + failed + cancelled;
  }
};

class JobStore {
 public:
  /// `store` may be null (in-memory only, no durability) — the daemon
  /// without --journal. Call recover() before the first mutation: it
  /// either adopts the stored journal or clears undecodable leftovers
  /// so stale blob sequence numbers cannot shadow fresh appends.
  explicit JobStore(mpisim::BlobStore* store);

  /// Replay the newest valid journal blob (corrupt blobs are skipped,
  /// obs "serve.daemon.journal_corrupt"). Returns the ids that came
  /// back as queued — including interrupted kRunning jobs — in their
  /// original submit order, for the daemon to re-enqueue.
  std::vector<std::string> recover();

  /// Journal + accept a new job. Returns false (and journals nothing)
  /// when the id already exists — resubmission after a restart is
  /// idempotent; the caller reports the existing state instead.
  bool submit(const Job& job);

  /// queued -> running. False when the job is missing or not queued
  /// (e.g. cancelled while sitting in the worker queue).
  bool mark_running(const std::string& id);

  /// running|queued -> done, outcome recorded. (Queued is allowed so a
  /// drain pass can complete jobs without a separate start record.)
  void mark_done(const std::string& id, const JobOutcome& outcome);

  /// running|queued -> failed, error recorded.
  void mark_failed(const std::string& id, const std::string& error);

  /// queued -> cancelled. False when missing or already running /
  /// terminal — cancel never claws back in-flight work.
  bool cancel(const std::string& id);

  /// Lookup; nullptr when the id was never submitted. The pointer stays
  /// valid until the next mutation.
  const StoredJob* find(const std::string& id) const;

  JobCounts counts() const;
  /// Ids currently queued, in submit order (the drain sweep's worklist).
  std::vector<std::string> queued_ids() const;
  std::size_t size() const { return jobs_.size(); }
  /// Journal records accumulated (transitions, not jobs).
  std::size_t journal_length() const { return journal_.size(); }

 private:
  void append(JournalRecord record);
  StoredJob* apply(const JournalRecord& record);  ///< fold into jobs_

  mpisim::BlobStore* store_;
  std::vector<JournalRecord> journal_;
  std::map<std::string, StoredJob> jobs_;  ///< ordered for stable output
  std::vector<std::string> submit_order_;
  std::uint64_t seq_ = 0;
};

}  // namespace rri::serve

#endif  // RRI_SERVE_JOBSTORE_HPP
