#ifndef RRI_SERVE_JOB_HPP
#define RRI_SERVE_JOB_HPP

/// \file job.hpp
/// The unit of work of the batch-serving layer: one (strand pair,
/// scoring params) request, plus the canonical cache key derived from
/// it. Keys canonicalize to the *solver inputs* — strand 2 is reversed
/// here when the job asks for the default 5'->3' convention — so two
/// requests that trigger the same computation share a key no matter how
/// they were spelled (lowercase, 'T' for 'U', pre-reversed strand 2).

#include <cstdint>
#include <string>

#include "rri/rna/scoring.hpp"
#include "rri/rna/sequence.hpp"
#include "rri/semiring/logsumexp.hpp"

namespace rri::serve {

/// Per-job scoring parameters. Deliberately a closed set of scalars (not
/// a ScoringModel) so jobs are trivially serializable, comparable, and
/// canonicalizable into the cache key.
struct JobParams {
  bool unit_weights = false;  ///< score every admissible pair 1
  int min_hairpin = 0;        ///< minimum loop size for intra pairs
  bool reverse = true;        ///< strand 2 arrives 5'->3' (solver reverses)
  /// Scoring algebra: kTropical runs BPMax (max score), kLogSumExp runs
  /// BPPart (log partition function over double-width tables).
  semiring::Algebra algebra = semiring::Algebra::kTropical;
  /// Boltzmann temperature for kLogSumExp; ignored by kTropical (and
  /// therefore absent from a tropical job's cache key). Must be > 0.
  double temperature = 1.0;

  /// Materialize the ScoringModel these params describe.
  rna::ScoringModel model() const;

  friend bool operator==(const JobParams&, const JobParams&) = default;
};

/// One scoring request as ingested from a manifest or FASTA pair.
/// `tenant` and `deadline_s` are serving-side admission metadata:
/// deliberately excluded from job_key_text, so identical computations
/// share cache entries and idempotent resubmission across tenants and
/// deadlines, and the score can never depend on who asked.
struct Job {
  std::string id;     ///< unique within a batch (manifest order breaks ties)
  rna::Sequence s1;   ///< strand 1, 5'->3'
  rna::Sequence s2;   ///< strand 2 as given (see JobParams::reverse)
  JobParams params;
  std::string tenant;      ///< quota bucket; "" = the anonymous tenant
  double deadline_s = 0.0; ///< shed if not started this many seconds after
                           ///< admission; 0 = no deadline
};

/// What the engine reports per served job. `seconds` is the only
/// non-deterministic field; resumed batches replay the outcome recorded
/// before the interruption, original timing included, so a resumed
/// results file differs from an uninterrupted one only in the timings
/// of jobs actually recomputed after the restart.
struct JobOutcome {
  std::string id;
  std::uint32_t key = 0;   ///< cache key (job_key)
  int m = 0;               ///< strand-1 length
  int n = 0;               ///< strand-2 length
  /// The algebra that produced this outcome. For kLogSumExp `log_z`
  /// holds the full-precision answer and `score` its float narrowing
  /// (so tools that only know "score" still sort/report sensibly).
  semiring::Algebra algebra = semiring::Algebra::kTropical;
  float score = 0.0f;
  double log_z = 0.0;      ///< kLogSumExp only: log partition function
  bool cache_hit = false;  ///< served from ResultCache, no kernel run
  double seconds = 0.0;    ///< wall time to serve (≈0 for cache hits)
  bool rejected = false;   ///< refused by the scheduler's memory budget
};

/// Canonical key text: uppercase-U solver-input sequences plus the
/// scoring params, e.g. "GGAU|UACC|w=bpmax|mh=0". The kernel variant is
/// deliberately absent — all variants produce bit-identical tables, so
/// results are interchangeable across them. Non-tropical algebras append
/// "|alg=<name>|T=<temperature>" — tropical jobs keep their historical
/// keys (and tropical ignores temperature, so it is canonicalized away),
/// while a bppart job on the same strands can never share a tropical
/// job's cache entry.
std::string job_key_text(const Job& job);

/// CRC-32 of job_key_text(). The cache verifies the full text on hit, so
/// a 32-bit collision costs a recompute, never a wrong answer.
std::uint32_t job_key(const Job& job);

}  // namespace rri::serve

#endif  // RRI_SERVE_JOB_HPP
