#ifndef RRI_SERVE_ENGINE_HPP
#define RRI_SERVE_ENGINE_HPP

/// \file engine.hpp
/// The batch-serving engine: a fixed pool of worker threads draining a
/// bounded JobQueue in the scheduler's largest-first order, each worker
/// executing whole jobs with the serial or OpenMP kernel (the grain
/// knob: coarse job-parallelism over workers composes with the paper's
/// fine-grain parallel kernels via per-job OpenMP thread counts — each
/// worker thread carries its own OpenMP nthreads ICV). Duplicate pairs
/// are served from the ResultCache; progress is checkpointed through a
/// BlobStore so an interrupted batch resumes without redoing finished
/// jobs. Emits serve.* obs counters (docs/serving.md).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rri/core/bpmax.hpp"
#include "rri/mpisim/checkpoint.hpp"
#include "rri/serve/job.hpp"

namespace rri::serve {

struct EngineConfig {
  int workers = 1;
  /// OpenMP threads each worker gives its kernel (the grain): 1 =
  /// pure job-parallelism with the serial schedule; >1 = each job also
  /// runs the paper's fine-grain parallel variant.
  int kernel_threads = 1;
  core::Variant variant = core::Variant::kHybridTiled;
  core::TileShape3 tile{};
  /// ResultCache byte budget; 0 disables memoization.
  std::size_t cache_bytes = 0;
  /// Per-worker memory budget in bytes (0 = unlimited); jobs over it
  /// are rejected, not run.
  double worker_budget_bytes = 0.0;
  /// Scheduler tie-break seed (scheduler.hpp).
  std::uint64_t seed = 0;
  /// Bounded queue capacity; 0 = 2×workers.
  std::size_t queue_capacity = 0;
  /// Optional persistence: batch progress is checkpointed here every
  /// `checkpoint_every` completed jobs (and once at the end).
  mpisim::BlobStore* state_store = nullptr;
  int checkpoint_every = 8;
  /// Replay finished jobs from the newest valid stored state instead of
  /// recomputing them. Throws std::runtime_error when the stored state
  /// belongs to a different manifest.
  bool resume = false;
  /// Test/CI hook: stop admitting new jobs once this many have
  /// completed in this run (<0 = no limit). Completed work is
  /// checkpointed, so a follow-up resume finishes the batch — a
  /// deterministic stand-in for `kill -9` in interruption tests.
  int max_jobs = -1;
};

struct EngineStats {
  std::size_t jobs_total = 0;     ///< manifest size
  std::size_t jobs_served = 0;    ///< outcomes produced this run
  std::size_t jobs_computed = 0;  ///< kernel executions this run
  std::size_t cache_hits = 0;
  std::size_t jobs_resumed = 0;   ///< replayed from stored state
  std::size_t jobs_rejected = 0;  ///< refused by the memory budget
  std::size_t queue_high_water = 0;
  std::size_t checkpoints_written = 0;
  bool interrupted = false;  ///< stopped early by EngineConfig::max_jobs
  std::vector<double> worker_busy_seconds;  ///< per worker
};

struct BatchResult {
  /// One outcome per job, in manifest order (deterministic regardless
  /// of completion interleaving). Rejected jobs carry rejected = true.
  std::vector<JobOutcome> outcomes;
  EngineStats stats;
};

/// Serve a whole batch. Blocks until every job is finished, rejected,
/// or the max_jobs interruption hook fires.
BatchResult run_batch(const std::vector<Job>& jobs,
                      const EngineConfig& config);

}  // namespace rri::serve

#endif  // RRI_SERVE_ENGINE_HPP
