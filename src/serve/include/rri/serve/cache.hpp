#ifndef RRI_SERVE_CACHE_HPP
#define RRI_SERVE_CACHE_HPP

/// \file cache.hpp
/// Memoizing result cache for the batch-serving engine: LRU by byte
/// footprint, keyed by the CRC-32 of the canonical job key text
/// (job.hpp). Hits verify the full key text, so a 32-bit collision
/// degrades to a miss instead of a wrong score. Thread-safe: workers
/// probe and fill concurrently under one mutex (the guarded work is
/// microseconds against kernel runs of milliseconds to minutes).

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace rri::serve {

/// Bytes charged per entry on top of the key text (list/map nodes,
/// bookkeeping). A coarse constant: the point of the budget is bounding
/// total footprint, not byte-exact malloc accounting.
inline constexpr std::size_t kCacheEntryOverhead = 96;

class ResultCache {
 public:
  /// `budget_bytes` caps the summed footprint of retained entries; 0
  /// disables caching entirely (every get misses, every put is dropped).
  explicit ResultCache(std::size_t budget_bytes);

  /// Probe by hash + full key text; promotes the entry to most recent.
  /// The value is one double: a tropical job's score, or an lse job's
  /// log partition function at full precision (the algebra is part of
  /// the key text, so the two kinds can never alias).
  std::optional<double> get(std::uint32_t key, const std::string& key_text);

  /// Insert (or refresh) a value. Evicts least-recently-used entries
  /// until the entry fits; an entry larger than the whole budget is not
  /// cached at all.
  void put(std::uint32_t key, const std::string& key_text, double value);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes_in_use = 0;
    std::size_t budget_bytes = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::uint32_t key = 0;
    std::string key_text;
    double value = 0.0;

    std::size_t bytes() const noexcept {
      return key_text.size() + kCacheEntryOverhead;
    }
  };

  void evict_until_fits(std::size_t incoming_bytes);  // requires lock held

  mutable std::mutex mutex_;
  std::size_t budget_bytes_;
  std::size_t bytes_in_use_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Entry> lru_;  ///< most recent first
  std::unordered_map<std::uint32_t, std::list<Entry>::iterator> index_;
};

}  // namespace rri::serve

#endif  // RRI_SERVE_CACHE_HPP
