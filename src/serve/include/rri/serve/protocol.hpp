#ifndef RRI_SERVE_PROTOCOL_HPP
#define RRI_SERVE_PROTOCOL_HPP

/// \file protocol.hpp
/// The rri_served wire protocol: length-prefixed JSONL frames. One
/// frame is a 4-byte big-endian payload length followed by exactly that
/// many bytes of UTF-8 — one JSON object per frame, newline-terminated
/// by convention (so a frame stream with the prefixes stripped is valid
/// JSONL). The prefix makes framing independent of payload content:
/// the reader never scans for delimiters, never over-reads past a
/// declared frame, and rejects a declared length over the frame budget
/// before buffering a single payload byte.
///
/// Request verbs: submit / status / result / cancel / drain / stats /
/// ping / metrics / slo. Responses always carry "ok" (true/false) and
/// echo "op"; error
/// frames add machine-readable "code" plus a human "error" message.
/// The full grammar is documented in docs/serving.md.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "rri/serve/job.hpp"

namespace rri::serve {

/// Hard per-frame payload budget. Generous against real requests (two
/// strands plus params is a few KiB) while bounding what one client can
/// make the daemon buffer.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Bytes of big-endian length prefix in front of every payload.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Malformed frame or request. Carries a machine-readable `code()`
/// ("oversized_frame", "bad_json", "bad_request", ...) suitable for an
/// error frame's "code" field.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// Wrap one payload in a length prefix. Throws ProtocolError
/// ("oversized_frame") when the payload exceeds `max_frame`.
std::string encode_frame(const std::string& payload,
                         std::size_t max_frame = kMaxFrameBytes);

/// Incremental frame extractor for one connection. Feed raw bytes as
/// they arrive; next() yields complete payloads in order. A declared
/// length over the budget poisons the reader (the stream offset is
/// unrecoverable) — every later next() rethrows, so a connection
/// handler can fail the client once and close.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  /// Append bytes received from the peer.
  void feed(const char* data, std::size_t size);
  void feed(const std::string& bytes) { feed(bytes.data(), bytes.size()); }

  /// Next complete payload, or nullopt when more bytes are needed.
  /// Throws ProtocolError ("oversized_frame") on a poisoned stream.
  std::optional<std::string> next();

  /// True when the fed bytes end inside a frame (header or payload) —
  /// a peer that disconnects now did so mid-frame.
  bool mid_frame() const noexcept { return !buffer_.empty(); }

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
  std::size_t max_frame_;
  bool poisoned_ = false;
};

/// The request verbs rri_served understands.
enum class Verb {
  kSubmit,  ///< enqueue one job (id, s1, s2, optional params)
  kStatus,  ///< one job's state (with id) or per-state counts (without)
  kResult,  ///< a finished job's outcome; "wait":true blocks until terminal
  kCancel,  ///< withdraw a queued job
  kDrain,   ///< stop intake; finish in-flight work; daemon exits 0
  kStats,   ///< daemon-level counters (uptime, connections, cache, jobs)
  kPing,    ///< liveness probe
  kMetrics, ///< Prometheus text exposition of the obs registry
  kSlo,     ///< live SLO objective states (burn rates, ok/warning/breach)
};
const char* verb_name(Verb verb) noexcept;

/// One parsed request frame.
struct Request {
  Verb verb = Verb::kPing;
  std::string id;     ///< submit/result/cancel (required), status (optional)
  bool wait = false;  ///< result: block until the job reaches a terminal state
  Job job;            ///< submit only; job.id == id
};

/// Parse + validate one request payload against the protocol grammar.
/// `defaults` seeds submit params exactly like manifest ingestion.
/// Throws ProtocolError with code "bad_json" (not JSON), "bad_request"
/// (wrong shape, unknown op, missing fields), or "bad_sequence"
/// (unparseable strand text).
Request parse_request(const std::string& payload,
                      const JobParams& defaults = {});

/// Serialize a submit request for `job` — what DaemonClient and
/// rri_client put on the wire (before the length prefix).
std::string submit_payload(const Job& job);

/// One-line error payload: {"ok":false,"op":...,"id":...,"code":...,
/// "error":...} ("id" omitted when empty).
std::string error_payload(const std::string& op, const std::string& id,
                          const std::string& code,
                          const std::string& message);

/// Error payload with a "retry_after_s" hint — quota_exceeded and
/// overloaded refusals tell the client when resubmitting may succeed.
/// A retrying DaemonClient honors the hint; resubmission is safe
/// because submits are idempotent via job_key_text.
std::string error_payload(const std::string& op, const std::string& id,
                          const std::string& code,
                          const std::string& message, double retry_after_s);

}  // namespace rri::serve

#endif  // RRI_SERVE_PROTOCOL_HPP
