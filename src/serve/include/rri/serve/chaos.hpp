#ifndef RRI_SERVE_CHAOS_HPP
#define RRI_SERVE_CHAOS_HPP

/// \file chaos.hpp
/// Seeded socket-fault injection for the serving daemon — mpisim's
/// FaultPlan idea lifted to the TCP layer. A ChaosPlan is consulted in
/// the daemon's read and write paths and injects three fault kinds:
///
///   stall  — sleep `ms` before the I/O call (slow network / GC pause)
///   split  — write a response frame in two sends with a yield between
///            them (exercises every partial-frame path in FrameReader)
///   reset  — abort the connection with an RST instead of completing
///            the I/O (client sees ECONNRESET mid-request)
///
/// Spec grammar (parsed by ChaosPlan::parse, set via RRI_CHAOS=):
///
///   spec    := clause (';' clause)*
///   clause  := 'stall' ':' 'p=' FLOAT ',' 'ms=' INT [',' 'seed=' INT]
///            | 'split' ':' 'p=' FLOAT            [',' 'seed=' INT]
///            | 'reset' ':' 'p=' FLOAT            [',' 'seed=' INT]
///
/// e.g. "stall:p=0.05,ms=40;split:p=0.3;reset:p=0.02,seed=7".
/// Probabilities are per I/O operation. Each clause draws from its own
/// seeded mt19937_64 stream, so a plan's decision sequence is a pure
/// function of (seed, draw index); connection threads interleave draws
/// through an internal mutex, which perturbs *which* operation a fault
/// lands on across runs but never the fault rate — chaos tests assert
/// byte-identical *results*, not byte-identical fault schedules.
///
/// Chaos never corrupts payload bytes. TCP already guarantees that a
/// split write is invisible to a correct reader, and resets/stalls are
/// exactly what a flaky network serves up — so a retrying client must
/// converge to the chaos-free answer, and the tests prove it does.

#include <cstdint>
#include <mutex>
#include <random>
#include <string>

namespace rri::serve {

class ChaosPlan {
 public:
  ChaosPlan() = default;
  ChaosPlan(const ChaosPlan& other);
  ChaosPlan& operator=(const ChaosPlan& other);

  /// Parse the grammar above; throws std::invalid_argument with a
  /// message naming the offending clause. Empty spec = no chaos.
  static ChaosPlan parse(const std::string& spec);

  /// True when no clause is armed — the daemon skips injection.
  bool empty() const noexcept {
    return stall_p_ <= 0.0 && split_p_ <= 0.0 && reset_p_ <= 0.0;
  }

  // Per-I/O draws (thread-safe). Each advances its clause's stream.
  /// Milliseconds to stall before the I/O, or 0 for none.
  int draw_stall_ms();
  /// True: split this write into two sends.
  bool draw_split();
  /// True: reset the connection instead of completing the I/O.
  bool draw_reset();

 private:
  static constexpr std::uint64_t kDefaultSeed = 0x5EEDull;

  /// Uniform double in [0, 1) from the top 53 bits — bit-identical
  /// across standard libraries, unlike uniform_real_distribution.
  static double unit_draw(std::mt19937_64& rng) {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  }

  double stall_p_ = 0.0;
  int stall_ms_ = 0;
  double split_p_ = 0.0;
  double reset_p_ = 0.0;
  std::mt19937_64 stall_rng_{kDefaultSeed};
  std::mt19937_64 split_rng_{kDefaultSeed};
  std::mt19937_64 reset_rng_{kDefaultSeed};
  std::mutex mutex_;  ///< connection threads share the streams
};

}  // namespace rri::serve

#endif  // RRI_SERVE_CHAOS_HPP
