#ifndef RRI_SERVE_CLIENT_HPP
#define RRI_SERVE_CLIENT_HPP

/// \file client.hpp
/// Blocking client for the rri_served frame protocol: one TCP
/// connection, one request frame out, one response frame back. Used by
/// tools/rri_client and the daemon tests; deliberately synchronous —
/// the daemon handles many connections, so a client that wants
/// pipelining opens more clients.
///
/// Resilience: request_retrying() reconnects and resends through
/// transport faults (connection reset mid-request, daemon restart) with
/// capped exponential backoff and seeded deterministic jitter, and
/// honors the retry_after_s hint on quota_exceeded / overloaded
/// refusals. Resending a submit is safe because submission is
/// idempotent via job_key_text; resending the other verbs is read-only
/// or idempotent by construction.

#include <cstdint>
#include <random>
#include <string>

#include "rri/obs/json.hpp"
#include "rri/serve/job.hpp"
#include "rri/serve/protocol.hpp"

namespace rri::serve {

/// Backoff schedule for connect() and request_retrying(). Delay before
/// attempt k (0-based retry index) is
///   min(cap_s, base_s * 2^k) * (0.5 + 0.5 * jitter)
/// with `jitter` drawn from a seeded mt19937_64 stream — deterministic
/// for a given policy, desynchronized across differently-seeded
/// clients (no thundering herd after a daemon restart).
struct RetryPolicy {
  int max_attempts = 5;    ///< total tries per operation (>= 1)
  double base_s = 0.05;    ///< first retry delay
  double cap_s = 2.0;      ///< delay ceiling
  std::uint64_t seed = 0x5EEDull;  ///< jitter stream seed
};

class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient();
  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Connect, retrying with the policy's backoff until `timeout_s`
  /// elapses (covers the daemon still binding its socket). Remembers
  /// host/port for request_retrying()'s reconnects. Throws
  /// std::runtime_error on failure.
  void connect(const std::string& host, int port, double timeout_s = 5.0);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const noexcept { return policy_; }

  /// Send one payload, read one response frame, parse it as JSON.
  /// Throws std::runtime_error on a closed/failed connection and
  /// ProtocolError on an unparseable response.
  obs::JsonValue request(const std::string& payload);

  /// request() hardened for a flaky daemon: on a transport error it
  /// backs off, reconnects, and resends; on a quota_exceeded /
  /// overloaded refusal it waits max(retry_after_s, backoff) and
  /// resubmits. Gives up after policy.max_attempts tries — the last
  /// refusal is returned as data, the last transport error rethrown.
  obs::JsonValue request_retrying(const std::string& payload);

  // Convenience wrappers over request(). Each returns the full response
  // document; callers check "ok" / "code" themselves — a daemon-side
  // error is data, not an exception.
  obs::JsonValue ping();
  obs::JsonValue submit(const Job& job);
  obs::JsonValue status(const std::string& id = "");
  obs::JsonValue result(const std::string& id, bool wait);
  /// submit / result through request_retrying() — what a client facing
  /// a chaos-injected or quota-enforcing daemon should use.
  obs::JsonValue submit_retrying(const Job& job);
  obs::JsonValue result_retrying(const std::string& id, bool wait);
  obs::JsonValue cancel(const std::string& id);
  obs::JsonValue drain();
  obs::JsonValue stats();
  /// Prometheus exposition ("body") + content type via the metrics verb.
  obs::JsonValue metrics();
  /// Live SLO objective states ("objectives" array).
  obs::JsonValue slo();

  /// Rebuild a JobOutcome from an ok result response — the fields
  /// round-trip through manifest.cpp's write_result_line unchanged, so
  /// client output is byte-identical to bpmax_batch's.
  static JobOutcome outcome_from_response(const obs::JsonValue& doc);

 private:
  /// Backoff delay before retry `attempt` (0-based), jittered.
  double backoff_s(int attempt);
  /// True when the response is a refusal worth retrying after its
  /// retry_after_s hint (quota_exceeded / overloaded).
  static bool retryable_refusal(const obs::JsonValue& doc);

  int fd_ = -1;
  FrameReader reader_;
  RetryPolicy policy_{};
  std::mt19937_64 jitter_rng_{policy_.seed};
  std::string host_;
  int port_ = 0;
  double connect_timeout_s_ = 5.0;
};

}  // namespace rri::serve

#endif  // RRI_SERVE_CLIENT_HPP
