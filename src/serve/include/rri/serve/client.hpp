#ifndef RRI_SERVE_CLIENT_HPP
#define RRI_SERVE_CLIENT_HPP

/// \file client.hpp
/// Blocking client for the rri_served frame protocol: one TCP
/// connection, one request frame out, one response frame back. Used by
/// tools/rri_client and the daemon tests; deliberately synchronous —
/// the daemon handles many connections, so a client that wants
/// pipelining opens more clients.

#include <string>

#include "rri/obs/json.hpp"
#include "rri/serve/job.hpp"
#include "rri/serve/protocol.hpp"

namespace rri::serve {

class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient();
  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Connect, retrying until `timeout_s` elapses (covers the daemon
  /// still binding its socket). Throws std::runtime_error on failure.
  void connect(const std::string& host, int port, double timeout_s = 5.0);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Send one payload, read one response frame, parse it as JSON.
  /// Throws std::runtime_error on a closed/failed connection and
  /// ProtocolError on an unparseable response.
  obs::JsonValue request(const std::string& payload);

  // Convenience wrappers over request(). Each returns the full response
  // document; callers check "ok" / "code" themselves — a daemon-side
  // error is data, not an exception.
  obs::JsonValue ping();
  obs::JsonValue submit(const Job& job);
  obs::JsonValue status(const std::string& id = "");
  obs::JsonValue result(const std::string& id, bool wait);
  obs::JsonValue cancel(const std::string& id);
  obs::JsonValue drain();
  obs::JsonValue stats();

  /// Rebuild a JobOutcome from an ok result response — the fields
  /// round-trip through manifest.cpp's write_result_line unchanged, so
  /// client output is byte-identical to bpmax_batch's.
  static JobOutcome outcome_from_response(const obs::JsonValue& doc);

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace rri::serve

#endif  // RRI_SERVE_CLIENT_HPP
