#ifndef RRI_MACHINE_SPEC_HPP
#define RRI_MACHINE_SPEC_HPP

/// \file spec.hpp
/// Machine descriptions for the roofline analysis (paper §V-A, Fig. 11).
/// The paper's numbers are published micro-architecture parameters, so
/// the roofline itself is an analytical artifact we can reproduce
/// exactly; the shipped presets are the paper's two testbeds.

#include <cstddef>
#include <string>
#include <vector>

namespace rri::machine {

/// One level of the memory hierarchy. Bandwidth is expressed the way the
/// Intel optimization manuals give it: sustained bytes/cycle — per core
/// for private levels, for the whole chip for shared levels.
struct CacheLevel {
  std::string name;               ///< "L1", "L2", "L3"
  std::size_t size_bytes = 0;     ///< capacity (per core for private levels)
  double bytes_per_cycle = 0.0;   ///< sustained bandwidth in bytes/cycle
  bool shared = false;            ///< chip-wide (true) vs per-core (false)

  /// Deliverable bandwidth in GB/s for `cores` cores at `ghz`.
  double bandwidth_gbps(int cores, double ghz) const {
    return bytes_per_cycle * ghz * (shared ? 1.0 : static_cast<double>(cores));
  }
};

struct MachineSpec {
  std::string name;
  int cores = 1;             ///< physical cores
  int threads_per_core = 1;  ///< SMT ways
  double ghz = 1.0;          ///< sustained all-core frequency
  int simd_bits = 128;       ///< vector register width
  /// Max-plus issue width: independent max and add pipes give 2 vector
  /// ops per cycle per core on the paper's Broadwell/Coffee Lake parts.
  double maxplus_issue_per_cycle = 2.0;
  std::vector<CacheLevel> caches;
  double dram_gbps = 0.0;

  int simd_lanes_f32() const { return simd_bits / 32; }

  /// Theoretical single-precision max-plus peak:
  /// cores × GHz × lanes × issue width. 345.6 GFLOPS for the E5-1650v4,
  /// which the paper rounds to "about 346".
  double maxplus_peak_gflops() const {
    return static_cast<double>(cores) * ghz *
           static_cast<double>(simd_lanes_f32()) * maxplus_issue_per_cycle;
  }

  int logical_cpus() const { return cores * threads_per_core; }
};

/// The paper's primary testbed: Xeon E5-1650v4 (Broadwell-EP), 6C/12T
/// at 3.6 GHz, AVX2; L1 32 KiB @ 93 B/c, L2 256 KiB @ 25 B/c, shared L3
/// 15 MiB @ 14 B/c per the Intel micro-architecture tables the paper
/// cites; DRAM 76.8 GB/s.
MachineSpec xeon_e5_1650v4();

/// The paper's scalability check machine: Xeon E-2278G (Coffee Lake),
/// 8C/16T, AVX2, shared L3 16 MiB, dual-channel DDR4-2666 (41.6 GB/s).
MachineSpec xeon_e_2278g();

/// Best-effort description of the current host, from /proc/cpuinfo and
/// sysfs cache topology, falling back to conservative defaults when a
/// field is unavailable. Bandwidths are estimated from typical
/// bytes/cycle for the detected vector ISA; treat its roofline as
/// indicative, not authoritative.
MachineSpec probe_host();

}  // namespace rri::machine

#endif  // RRI_MACHINE_SPEC_HPP
