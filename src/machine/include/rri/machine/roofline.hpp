#ifndef RRI_MACHINE_ROOFLINE_HPP
#define RRI_MACHINE_ROOFLINE_HPP

/// \file roofline.hpp
/// Roofline evaluation (paper Fig. 11): attainable GFLOPS at a given
/// arithmetic intensity under each bandwidth ceiling and the compute
/// peak. BPMax's vectorized inner loop performs 2 flops per 3
/// single-precision memory operations, an arithmetic intensity of
/// 2/(3·4) = 1/6 flops/byte, which pins the kernel against the L1 roof
/// at roughly 335 GFLOPS on the E5-1650v4 (the paper quotes ≈329).

#include <string>
#include <vector>

#include "rri/machine/spec.hpp"

namespace rri::machine {

/// BPMax inner-loop arithmetic intensity: Y = max(a + X, Y) does one add
/// and one max per (two loads + one store) of 4-byte floats.
constexpr double bpmax_arithmetic_intensity() { return 2.0 / 12.0; }

struct RooflinePoint {
  std::string bound;     ///< "peak", "L1", "L2", "L3", "DRAM"
  double gflops = 0.0;   ///< ceiling at the queried intensity
};

/// All ceilings at arithmetic intensity `ai` (flops/byte), ordered
/// compute peak first then memory levels outward. The attainable
/// performance is the minimum entry.
std::vector<RooflinePoint> roofline(const MachineSpec& spec, double ai);

/// min over roofline(spec, ai) — the classical attainable bound.
double attainable_gflops(const MachineSpec& spec, double ai);

/// Which ceiling binds at intensity `ai` ("peak" when compute-bound).
std::string binding_level(const MachineSpec& spec, double ai);

}  // namespace rri::machine

#endif  // RRI_MACHINE_ROOFLINE_HPP
