#include "rri/machine/roofline.hpp"

#include <algorithm>

namespace rri::machine {

std::vector<RooflinePoint> roofline(const MachineSpec& spec, double ai) {
  std::vector<RooflinePoint> points;
  points.push_back({"peak", spec.maxplus_peak_gflops()});
  for (const CacheLevel& level : spec.caches) {
    points.push_back(
        {level.name, ai * level.bandwidth_gbps(spec.cores, spec.ghz)});
  }
  if (spec.dram_gbps > 0.0) {
    points.push_back({"DRAM", ai * spec.dram_gbps});
  }
  return points;
}

double attainable_gflops(const MachineSpec& spec, double ai) {
  const auto points = roofline(spec, ai);
  double best = points.front().gflops;
  for (const auto& p : points) {
    best = std::min(best, p.gflops);
  }
  return best;
}

std::string binding_level(const MachineSpec& spec, double ai) {
  const auto points = roofline(spec, ai);
  const auto it = std::min_element(
      points.begin(), points.end(),
      [](const RooflinePoint& a, const RooflinePoint& b) {
        return a.gflops < b.gflops;
      });
  return it->bound;
}

}  // namespace rri::machine
