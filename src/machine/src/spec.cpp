#include "rri/machine/spec.hpp"

#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

namespace rri::machine {

MachineSpec xeon_e5_1650v4() {
  MachineSpec spec;
  spec.name = "Intel Xeon E5-1650 v4 (Broadwell-EP)";
  spec.cores = 6;
  spec.threads_per_core = 2;
  spec.ghz = 3.6;
  spec.simd_bits = 256;  // AVX2
  spec.caches = {
      {"L1", 32 * 1024, 93.0, false},
      {"L2", 256 * 1024, 25.0, false},
      {"L3", 15 * 1024 * 1024, 14.0, true},
  };
  // The paper's L3 figure is bytes/cycle for the whole ring; DRAM is
  // quoted directly in GB/s.
  spec.dram_gbps = 76.8;
  return spec;
}

MachineSpec xeon_e_2278g() {
  MachineSpec spec;
  spec.name = "Intel Xeon E-2278G (Coffee Lake)";
  spec.cores = 8;
  spec.threads_per_core = 2;
  spec.ghz = 3.4;
  spec.simd_bits = 256;
  spec.caches = {
      {"L1", 32 * 1024, 93.0, false},
      {"L2", 256 * 1024, 25.0, false},
      {"L3", 16 * 1024 * 1024, 14.0, true},
  };
  spec.dram_gbps = 41.6;  // dual-channel DDR4-2666
  return spec;
}

namespace {

/// First value of `key` in /proc/cpuinfo ("key\t: value"), or "".
std::string cpuinfo_field(const std::string& key) {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, key.size(), key) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        auto value = line.substr(colon + 1);
        const auto first = value.find_first_not_of(" \t");
        return first == std::string::npos ? std::string{}
                                          : value.substr(first);
      }
    }
  }
  return {};
}

/// Parse a sysfs cache size string like "32K" / "15360K" / "8M".
std::size_t parse_cache_size(const std::string& text) {
  if (text.empty()) {
    return 0;
  }
  std::size_t value = 0;
  std::size_t pos = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[pos] - '0');
    ++pos;
  }
  if (pos < text.size()) {
    if (text[pos] == 'K' || text[pos] == 'k') {
      value *= 1024;
    } else if (text[pos] == 'M' || text[pos] == 'm') {
      value *= 1024 * 1024;
    }
  }
  return value;
}

std::string read_file_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  return line;
}

}  // namespace

MachineSpec probe_host() {
  MachineSpec spec;
  const std::string model = cpuinfo_field("model name");
  spec.name = model.empty() ? "unknown host" : model;

  const unsigned hw = std::thread::hardware_concurrency();
  const std::string cores_field = cpuinfo_field("cpu cores");
  int physical = 0;
  if (!cores_field.empty()) {
    physical = std::atoi(cores_field.c_str());
  }
  if (physical <= 0) {
    physical = hw > 0 ? static_cast<int>(hw) : 1;
  }
  spec.cores = physical;
  spec.threads_per_core =
      (hw > 0 && physical > 0 && static_cast<int>(hw) >= physical)
          ? static_cast<int>(hw) / physical
          : 1;

  const std::string mhz = cpuinfo_field("cpu MHz");
  if (!mhz.empty()) {
    const double v = std::atof(mhz.c_str());
    if (v > 100.0) {
      spec.ghz = v / 1000.0;
    }
  }
  if (spec.ghz <= 0.1) {
    spec.ghz = 2.0;  // conservative fallback
  }

  const std::string flags = cpuinfo_field("flags");
  if (flags.find("avx512f") != std::string::npos) {
    spec.simd_bits = 512;
  } else if (flags.find("avx2") != std::string::npos) {
    spec.simd_bits = 256;
  } else if (flags.find("sse2") != std::string::npos) {
    spec.simd_bits = 128;
  }

  // Cache topology from sysfs; bandwidths use typical sustained
  // bytes/cycle for recent x86 (the same figures the paper quotes).
  const double default_bpc[3] = {93.0, 25.0, 14.0};
  for (int index = 0; index < 4; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    const std::string level_text = read_file_line(base + "/level");
    const std::string type = read_file_line(base + "/type");
    if (level_text.empty() || type == "Instruction") {
      continue;
    }
    const int level = std::atoi(level_text.c_str());
    const std::size_t size = parse_cache_size(read_file_line(base + "/size"));
    if (level < 1 || level > 3 || size == 0) {
      continue;
    }
    CacheLevel cache;
    cache.name = "L" + std::to_string(level);
    cache.size_bytes = size;
    cache.bytes_per_cycle = default_bpc[level - 1];
    cache.shared = (level == 3);
    spec.caches.push_back(cache);
  }
  if (spec.caches.empty()) {
    spec.caches = {{"L1", 32 * 1024, 93.0, false},
                   {"L2", 256 * 1024, 25.0, false},
                   {"L3", 8 * 1024 * 1024, 14.0, true}};
  }
  spec.dram_gbps = 25.6;  // single-channel-ish conservative default
  return spec;
}

}  // namespace rri::machine
