#ifndef RRI_MPISIM_FAULT_HPP
#define RRI_MPISIM_FAULT_HPP

/// \file fault.hpp
/// Deterministic fault injection for the BSP simulator. A FaultPlan is a
/// seeded schedule of failures — rank crashes pinned to supersteps plus
/// probabilistic per-message faults (drop, duplicate, bit-flip) drawn
/// from private counter-free RNG streams — that BspWorld consults while
/// it runs. The same plan against the same traffic produces the same
/// FaultEvent log, so every recovery test is replayable from a seed.
///
/// Spec grammar (parsed by FaultPlan::parse, used by `bpmax --faults`):
///
///   spec    := clause (';' clause)*
///   clause  := 'crash' ':' 'rank=' INT ',' 'step=' INT
///            | 'drop'  ':' 'p=' FLOAT [',' 'seed=' INT]
///            | 'dup'   ':' 'p=' FLOAT [',' 'seed=' INT]
///            | 'flip'  ':' 'p=' FLOAT [',' 'seed=' INT]
///
/// e.g. "crash:rank=2,step=7;drop:p=0.01,seed=42". Probabilities are
/// per message; crash steps are BSP superstep indices over the world's
/// whole lifetime (superstep 0 is the compute phase before the first
/// barrier).

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace rri::mpisim {

enum class FaultKind : int {
  kCrash = 0,   ///< rank permanently stops sending and receiving
  kDrop,        ///< a sent message is never delivered
  kDuplicate,   ///< a sent message is delivered twice
  kBitFlip,     ///< one payload bit is inverted in flight
};

/// Stable lower_snake name ("crash", "drop", "duplicate", "bit_flip").
const char* fault_kind_name(FaultKind k) noexcept;

/// One injected fault, as recorded by BspWorld::fault_events().
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  std::size_t superstep = 0;  ///< superstep during which it happened
  int rank = -1;   ///< crashed rank, or the receiver of the message
  int from = -1;   ///< message sender (-1 for crashes)
  int tag = -1;    ///< message tag (-1 for crashes)
  std::size_t bit = 0;  ///< flipped payload bit index (kBitFlip only)
};

bool operator==(const FaultEvent& a, const FaultEvent& b) noexcept;

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse the grammar above; throws std::invalid_argument with a
  /// message naming the offending clause.
  static FaultPlan parse(const std::string& spec);

  void add_crash(int rank, std::size_t step);
  void add_drop(double p, std::uint64_t seed = kDefaultSeed);
  void add_duplicate(double p, std::uint64_t seed = kDefaultSeed);
  void add_bit_flip(double p, std::uint64_t seed = kDefaultSeed);

  bool empty() const noexcept;
  /// True when any of drop/duplicate/flip is armed (receivers should
  /// then expect missing, repeated, or corrupt messages).
  bool has_message_faults() const noexcept;

  /// Ranks scheduled to die at exactly `step`.
  std::vector<int> crashes_at(std::size_t step) const;

  // Per-message draws. Each advances its clause's private RNG stream,
  // so the decision sequence is a pure function of (seed, call index) —
  // identical plans fed identical traffic inject identical faults.
  bool draw_drop();
  bool draw_duplicate();
  /// Returns the payload bit to flip, or SIZE_MAX for "no flip".
  /// Messages with empty payloads are never flipped.
  std::size_t draw_flip_bit(std::size_t payload_bits);

 private:
  static constexpr std::uint64_t kDefaultSeed = 0x5EEDull;

  /// Uniform double in [0, 1) from the top 53 bits — bit-identical
  /// across standard libraries, unlike uniform_real_distribution.
  static double unit_draw(std::mt19937_64& rng) {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  }

  struct Crash {
    int rank;
    std::size_t step;
  };

  std::vector<Crash> crashes_;
  double drop_p_ = 0.0;
  double dup_p_ = 0.0;
  double flip_p_ = 0.0;
  std::mt19937_64 drop_rng_{kDefaultSeed};
  std::mt19937_64 dup_rng_{kDefaultSeed};
  std::mt19937_64 flip_rng_{kDefaultSeed};
};

}  // namespace rri::mpisim

#endif  // RRI_MPISIM_FAULT_HPP
