#ifndef RRI_MPISIM_DIST_BPMAX_HPP
#define RRI_MPISIM_DIST_BPMAX_HPP

/// \file dist_bpmax.hpp
/// Distributed BPMax over the BSP simulator — the paper's future-work
/// MPI design, made concrete: the triangles of each anti-diagonal of the
/// outer triangle are dealt block-cyclically to ranks; every superstep a
/// rank computes its triangles of the current diagonal (splits +
/// finalization, the serial-permuted kernel) and broadcasts the finished
/// blocks, which every other rank installs before the next diagonal.
/// Memory is replicated (each rank holds the full F-table), which is the
/// communication-minimal point of the design space; the cost model makes
/// the resulting comm/compute trade-off measurable.
///
/// The solver is fault-tolerant (docs/fault_tolerance.md): run under a
/// FaultPlan, it survives rank crashes and in-flight message corruption
/// by validating every superstep (expected block set + per-message
/// CRC-32), re-dealing a dead rank's triangles to the survivors, and
/// replaying from the last valid checkpoint (RecoveryPolicy). Because a
/// triangle's value does not depend on which rank computes it, a
/// recovered run returns scores bit-identical to the fault-free run.

#include <vector>

#include "rri/core/bpmax.hpp"
#include "rri/mpisim/bsp.hpp"
#include "rri/mpisim/checkpoint.hpp"
#include "rri/mpisim/fault.hpp"

namespace rri::mpisim {

/// Simple alpha-beta cluster cost model for predicting makespan.
struct ClusterModel {
  double flops_per_second = 10e9;   ///< per-rank sustained kernel rate
  double alpha_seconds = 5e-6;      ///< per-superstep latency
  double beta_seconds_per_byte = 1.0 / 10e9;  ///< 10 GB/s links
};

/// How distributed_bpmax checkpoints and reacts to failures.
struct RecoveryPolicy {
  /// Write a checkpoint after every K completed diagonals (0 = never).
  /// Requires `store`.
  int checkpoint_every = 0;
  /// Where checkpoints go / come from. Not owned. May be null when
  /// checkpoint_every == 0 and resume is false.
  CheckpointStore* store = nullptr;
  /// Recovery budget: total rollback/replay cycles (crash recoveries
  /// plus corrupt-superstep retries) before giving up with
  /// std::runtime_error.
  int max_retries = 8;
  /// On rank loss, re-deal the dead rank's triangles to the survivors
  /// and continue with fewer ranks. When false, rank loss is fatal.
  bool degrade = true;
  /// Start from store->latest() when it holds a valid checkpoint (the
  /// `bpmax --resume=DIR` path) instead of from scratch.
  bool resume = false;
};

/// What fault handling actually happened during a run.
struct RecoveryStats {
  int recoveries = 0;           ///< rollback/replay cycles, all causes
  int ranks_lost = 0;           ///< ranks dead at the end of the run
  int checkpoints_written = 0;
  int checkpoint_restores = 0;  ///< recoveries replayed from a checkpoint
  int scratch_restarts = 0;     ///< recoveries with no valid checkpoint
  int corrupt_supersteps = 0;   ///< supersteps rolled back over bad messages
  int resume_diagonal = -1;     ///< policy.resume pickup point (-1 = fresh)
};

struct DistributedResult {
  float score = 0.0f;
  int ranks = 1;
  CommStats comm;
  std::vector<double> rank_flops;        ///< compute per rank (whole run)
  std::vector<double> step_max_flops;    ///< per superstep: max rank flops
  std::vector<std::size_t> step_max_bytes;  ///< per superstep: max rank bytes
  /// The completed F-table (a surviving rank's replica, moved out), so
  /// callers can run traceback without recomputation. Empty for
  /// predict_distributed_bpmax.
  core::FTable table;
  RecoveryStats recovery;
  std::vector<FaultEvent> fault_events;  ///< what the plan injected

  /// Predicted makespan under `model`: per superstep the slowest rank's
  /// compute plus latency plus the serialization of its traffic.
  double simulated_seconds(const ClusterModel& model) const;

  /// Predicted speedup over the same work on one rank (no comm).
  double simulated_speedup(const ClusterModel& model) const;
};

/// Run BPMax distributed over `ranks` simulated processes, optionally
/// under an injected fault plan and a recovery policy. Produces the same
/// score (indeed the same table) as any shared-memory variant — also
/// after recoveries. Throws std::runtime_error when the recovery budget
/// is exhausted, every rank is dead, degrade is disabled and a rank was
/// lost, or a resume checkpoint does not match the strands.
DistributedResult distributed_bpmax(const rna::Sequence& strand1,
                                    const rna::Sequence& strand2,
                                    const rna::ScoringModel& model,
                                    int ranks, FaultPlan faults = {},
                                    const RecoveryPolicy& policy = {});

/// Analytic prediction of the same run without executing it: the
/// per-superstep flop and byte profiles follow closed forms (tests check
/// them against the executed simulation cell for cell). This enables
/// cluster projections at the paper's instance sizes (e.g. M=300,
/// N=2048) that would take hours to actually compute. `score` is 0 in
/// the returned struct — nothing was solved.
DistributedResult predict_distributed_bpmax(int m, int n, int ranks);

}  // namespace rri::mpisim

#endif  // RRI_MPISIM_DIST_BPMAX_HPP
