#ifndef RRI_MPISIM_DIST_BPMAX_HPP
#define RRI_MPISIM_DIST_BPMAX_HPP

/// \file dist_bpmax.hpp
/// Distributed BPMax over the BSP simulator — the paper's future-work
/// MPI design, made concrete: the triangles of each anti-diagonal of the
/// outer triangle are dealt block-cyclically to ranks; every superstep a
/// rank computes its triangles of the current diagonal (splits +
/// finalization, the serial-permuted kernel) and broadcasts the finished
/// blocks, which every other rank installs before the next diagonal.
/// Memory is replicated (each rank holds the full F-table), which is the
/// communication-minimal point of the design space; the cost model makes
/// the resulting comm/compute trade-off measurable.

#include "rri/core/bpmax.hpp"
#include "rri/mpisim/bsp.hpp"

namespace rri::mpisim {

/// Simple alpha-beta cluster cost model for predicting makespan.
struct ClusterModel {
  double flops_per_second = 10e9;   ///< per-rank sustained kernel rate
  double alpha_seconds = 5e-6;      ///< per-superstep latency
  double beta_seconds_per_byte = 1.0 / 10e9;  ///< 10 GB/s links
};

struct DistributedResult {
  float score = 0.0f;
  int ranks = 1;
  CommStats comm;
  std::vector<double> rank_flops;        ///< compute per rank (whole run)
  std::vector<double> step_max_flops;    ///< per superstep: max rank flops
  std::vector<std::size_t> step_max_bytes;  ///< per superstep: max rank bytes

  /// Predicted makespan under `model`: per superstep the slowest rank's
  /// compute plus latency plus the serialization of its traffic.
  double simulated_seconds(const ClusterModel& model) const;

  /// Predicted speedup over the same work on one rank (no comm).
  double simulated_speedup(const ClusterModel& model) const;
};

/// Run BPMax distributed over `ranks` simulated processes. Produces the
/// same score (indeed the same table) as any shared-memory variant.
DistributedResult distributed_bpmax(const rna::Sequence& strand1,
                                    const rna::Sequence& strand2,
                                    const rna::ScoringModel& model,
                                    int ranks);

/// Analytic prediction of the same run without executing it: the
/// per-superstep flop and byte profiles follow closed forms (tests check
/// them against the executed simulation cell for cell). This enables
/// cluster projections at the paper's instance sizes (e.g. M=300,
/// N=2048) that would take hours to actually compute. `score` is 0 in
/// the returned struct — nothing was solved.
DistributedResult predict_distributed_bpmax(int m, int n, int ranks);

}  // namespace rri::mpisim

#endif  // RRI_MPISIM_DIST_BPMAX_HPP
