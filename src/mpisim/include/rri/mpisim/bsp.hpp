#ifndef RRI_MPISIM_BSP_HPP
#define RRI_MPISIM_BSP_HPP

/// \file bsp.hpp
/// A deterministic bulk-synchronous message-passing simulator. The paper
/// names distributing BPMax "over a cluster using MPI" as future work;
/// this substrate lets the repo build and evaluate that distribution
/// without cluster hardware: ranks run sequentially inside one process,
/// sends are buffered and delivered at the next superstep barrier, and
/// the world counts every message and byte so an alpha-beta cost model
/// can predict cluster behaviour (see cluster.hpp).
///
/// The world can also run under a FaultPlan (fault.hpp): ranks crash at
/// scheduled supersteps (a dead rank neither sends nor receives — a
/// send *from* a dead rank throws, a send *to* one is discarded), and
/// messages are dropped, duplicated, or bit-flipped in flight. Every
/// payload carries a CRC-32 stamped at send time, so receivers can
/// detect in-flight corruption; every injected fault is appended to a
/// replayable FaultEvent log.

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "rri/mpisim/fault.hpp"

namespace rri::mpisim {

struct Message {
  int from = 0;
  int tag = 0;
  std::vector<float> payload;
  /// CRC-32 of the payload bytes computed when the send was issued —
  /// before any in-flight fault touched them. intact() recomputes and
  /// compares, so a bit-flipped payload is detectable at the receiver.
  std::uint32_t crc = 0;
  /// rri::trace flow id stamped at send time (0 = tracing was off):
  /// receive() emits the matching flow_in so the viewer draws a
  /// send -> receive arrow between the two rank lanes.
  std::uint64_t trace_id = 0;

  bool intact() const noexcept;
};

struct CommStats {
  std::size_t supersteps = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;  ///< payload bytes (4 per float)
};

/// The communication world for `ranks` simulated processes.
///
/// Usage pattern (SPMD by explicit loop):
///   BspWorld world(P);
///   while (work remains) {
///     for (int r = 0; r < P; ++r) { ... world.send(r, to, tag, data); }
///     world.barrier();   // deliver; next superstep
///     for (int r = 0; r < P; ++r) { auto msgs = world.receive(r); ... }
///   }
class BspWorld {
 public:
  explicit BspWorld(int ranks, FaultPlan plan = {});

  int ranks() const noexcept { return ranks_; }

  /// Buffer a message for delivery at the next barrier. Self-sends are
  /// allowed (delivered like any other). Throws std::out_of_range for
  /// invalid ranks and std::logic_error when `from` has crashed (a dead
  /// rank must not leak messages). Sends to a dead rank are silently
  /// discarded, like packets to a powered-off host.
  void send(int from, int to, int tag, std::vector<float> payload);

  /// Broadcast from `from` to every *other* rank.
  void broadcast(int from, int tag, const std::vector<float>& payload);

  /// Deliver all buffered sends; starts the next superstep (applying
  /// any crashes the fault plan schedules for it).
  void barrier();

  /// Drain the messages delivered to `rank` (in (sender, send-order)
  /// order — deterministic). Clears the inbox. A dead rank receives
  /// nothing (always empty).
  std::vector<Message> receive(int rank);

  /// Messages waiting (delivered, unreceived) for `rank`.
  std::size_t pending(int rank) const;

  /// Superstep currently executing: the number of completed barriers.
  std::size_t superstep() const noexcept { return stats_.supersteps; }

  // ------------------------------------------------ fault observability
  bool alive(int rank) const;
  int alive_count() const noexcept;
  /// Ranks still alive, ascending — the deal order for re-distribution.
  std::vector<int> alive_ranks() const;
  /// Every fault injected so far, in injection order (replayable: same
  /// plan + same traffic => same log).
  const std::vector<FaultEvent>& fault_events() const noexcept {
    return fault_events_;
  }

  const CommStats& stats() const noexcept { return stats_; }

  /// Per-rank traffic of the superstep that ended at the last barrier:
  /// [rank] -> bytes sent.
  const std::vector<std::size_t>& last_step_sent_bytes() const noexcept {
    return last_sent_bytes_;
  }

  /// Cumulative per-rank traffic over the world's whole lifetime:
  /// [rank] -> payload bytes sent / delivered. Sends count immediately;
  /// deliveries count at the barrier that hands them over (BSP
  /// semantics), so mid-superstep the two totals differ by the bytes
  /// still in flight.
  const std::vector<std::size_t>& rank_sent_bytes() const noexcept {
    return rank_sent_bytes_;
  }
  const std::vector<std::size_t>& rank_recv_bytes() const noexcept {
    return rank_recv_bytes_;
  }

 private:
  void check_rank(int rank) const {
    if (rank < 0 || rank >= ranks_) {
      throw std::out_of_range("invalid rank " + std::to_string(rank));
    }
  }

  /// Kill the ranks the plan schedules for the current superstep.
  void apply_crashes();
  void enqueue(int from, int to, int tag, std::vector<float> payload,
               std::uint32_t crc);

  int ranks_;
  FaultPlan plan_;
  std::vector<char> alive_;  ///< char, not bool: addressable flags
  std::vector<FaultEvent> fault_events_;
  std::vector<std::vector<Message>> in_flight_;  ///< buffered this superstep
  std::vector<std::vector<Message>> delivered_;  ///< readable inboxes
  std::vector<std::size_t> current_sent_bytes_;
  std::vector<std::size_t> last_sent_bytes_;
  std::vector<std::size_t> rank_sent_bytes_;
  std::vector<std::size_t> rank_recv_bytes_;
  CommStats stats_;
};

}  // namespace rri::mpisim

#endif  // RRI_MPISIM_BSP_HPP
