#ifndef RRI_MPISIM_BSP_HPP
#define RRI_MPISIM_BSP_HPP

/// \file bsp.hpp
/// A deterministic bulk-synchronous message-passing simulator. The paper
/// names distributing BPMax "over a cluster using MPI" as future work;
/// this substrate lets the repo build and evaluate that distribution
/// without cluster hardware: ranks run sequentially inside one process,
/// sends are buffered and delivered at the next superstep barrier, and
/// the world counts every message and byte so an alpha-beta cost model
/// can predict cluster behaviour (see cluster.hpp).

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

namespace rri::mpisim {

struct Message {
  int from = 0;
  int tag = 0;
  std::vector<float> payload;
};

struct CommStats {
  std::size_t supersteps = 0;
  std::size_t messages = 0;
  std::size_t bytes = 0;  ///< payload bytes (4 per float)
};

/// The communication world for `ranks` simulated processes.
///
/// Usage pattern (SPMD by explicit loop):
///   BspWorld world(P);
///   while (work remains) {
///     for (int r = 0; r < P; ++r) { ... world.send(r, to, tag, data); }
///     world.barrier();   // deliver; next superstep
///     for (int r = 0; r < P; ++r) { auto msgs = world.receive(r); ... }
///   }
class BspWorld {
 public:
  explicit BspWorld(int ranks);

  int ranks() const noexcept { return ranks_; }

  /// Buffer a message for delivery at the next barrier. Self-sends are
  /// allowed (delivered like any other). Throws std::out_of_range for
  /// invalid ranks.
  void send(int from, int to, int tag, std::vector<float> payload);

  /// Broadcast from `from` to every *other* rank.
  void broadcast(int from, int tag, const std::vector<float>& payload);

  /// Deliver all buffered sends; starts the next superstep.
  void barrier();

  /// Drain the messages delivered to `rank` (in (sender, send-order)
  /// order — deterministic). Clears the inbox.
  std::vector<Message> receive(int rank);

  /// Messages waiting (delivered, unreceived) for `rank`.
  std::size_t pending(int rank) const;

  const CommStats& stats() const noexcept { return stats_; }

  /// Per-rank traffic of the superstep that ended at the last barrier:
  /// [rank] -> bytes sent.
  const std::vector<std::size_t>& last_step_sent_bytes() const noexcept {
    return last_sent_bytes_;
  }

  /// Cumulative per-rank traffic over the world's whole lifetime:
  /// [rank] -> payload bytes sent / delivered. Sends count immediately;
  /// deliveries count at the barrier that hands them over (BSP
  /// semantics), so mid-superstep the two totals differ by the bytes
  /// still in flight.
  const std::vector<std::size_t>& rank_sent_bytes() const noexcept {
    return rank_sent_bytes_;
  }
  const std::vector<std::size_t>& rank_recv_bytes() const noexcept {
    return rank_recv_bytes_;
  }

 private:
  void check_rank(int rank) const {
    if (rank < 0 || rank >= ranks_) {
      throw std::out_of_range("invalid rank " + std::to_string(rank));
    }
  }

  int ranks_;
  std::vector<std::vector<Message>> in_flight_;  ///< buffered this superstep
  std::vector<std::vector<Message>> delivered_;  ///< readable inboxes
  std::vector<std::size_t> current_sent_bytes_;
  std::vector<std::size_t> last_sent_bytes_;
  std::vector<std::size_t> rank_sent_bytes_;
  std::vector<std::size_t> rank_recv_bytes_;
  CommStats stats_;
};

}  // namespace rri::mpisim

#endif  // RRI_MPISIM_BSP_HPP
