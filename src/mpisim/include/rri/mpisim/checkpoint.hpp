#ifndef RRI_MPISIM_CHECKPOINT_HPP
#define RRI_MPISIM_CHECKPOINT_HPP

/// \file checkpoint.hpp
/// Checkpoint/restart state for distributed BPMax. A checkpoint is the
/// coordinator's view after finishing diagonal `next_diagonal - 1`: the
/// diagonal cursor, the per-rank deal (which ranks of the original
/// world are still participating — triangle ownership is block-cyclic
/// over that list), and the finished F-table prefix (cells on diagonals
/// >= next_diagonal are -inf, as in a fresh table). Encoding: a "RRCK"
/// header, the cursor and deal, the table embedded via the RRIF v2
/// serializer, and a CRC-32 footer over every preceding byte — a torn
/// or bit-flipped checkpoint fails decode with core::SerializeError and
/// the store falls back to the previous one (keep-last-K).

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rri/core/ftable.hpp"

namespace rri::mpisim {

struct Checkpoint {
  int next_diagonal = 0;   ///< all outer diagonals < this are complete
  int total_ranks = 0;     ///< world size of the original run
  std::vector<int> alive;  ///< participating ranks (the deal), ascending
  core::FTable table;      ///< finished prefix
};

/// Serialize with the CRC-32 footer described above.
std::string encode_checkpoint(const Checkpoint& ckpt);

/// Parse + integrity-check; throws core::SerializeError on a bad magic,
/// torn tail, CRC mismatch, or inconsistent fields.
Checkpoint decode_checkpoint(const std::string& bytes);

/// Keep-last-K storage of opaque blobs ordered by a caller-supplied
/// sequence number. The durability substrate under CheckpointStore and
/// the serve layer's batch-progress state: callers bring their own
/// encode/decode (and integrity footer); the store only orders, prunes
/// and persists bytes.
class BlobStore {
 public:
  virtual ~BlobStore() = default;
  /// Store `bytes` under monotone sequence number `seq`; prunes to the
  /// newest K. Re-putting a seq overwrites that slot.
  virtual void put_blob(std::uint64_t seq, const std::string& bytes) = 0;
  /// Retained blobs, newest first, undecoded. Unreadable files are
  /// skipped (and counted by the caller when decode fails).
  virtual std::vector<std::string> blobs() = 0;
  /// Blobs currently retained (valid or not).
  virtual std::size_t size() const = 0;
  /// Drop every retained blob. A fresh (non-resuming) run calls this so
  /// stale state from an earlier run in the same store can never shadow
  /// the new sequence numbers.
  virtual void clear() = 0;
};

/// In-process blob ring (no durability across process death).
class MemoryBlobStore final : public BlobStore {
 public:
  explicit MemoryBlobStore(int keep_last = 2);
  void put_blob(std::uint64_t seq, const std::string& bytes) override;
  std::vector<std::string> blobs() override;
  std::size_t size() const override { return slots_.size(); }
  void clear() override { slots_.clear(); }

  /// Test hook: flip one bit of the newest stored blob (simulates
  /// at-rest corruption without going through a filesystem).
  void corrupt_newest(std::size_t bit);

 private:
  std::size_t keep_last_;
  std::deque<std::pair<std::uint64_t, std::string>> slots_;  ///< oldest first
};

/// Directory-backed blob store: one `<prefix><seq><suffix>` file per
/// blob (seq zero-padded so lexicographic == chronological), written
/// via write-then-rename so a crash mid-write leaves no torn file under
/// the final name. Survives process death.
class FileBlobStore final : public BlobStore {
 public:
  /// Creates `dir` if missing; throws std::runtime_error when the
  /// directory cannot be created or written.
  FileBlobStore(std::string dir, std::string prefix, std::string suffix,
                int keep_last = 2);
  void put_blob(std::uint64_t seq, const std::string& bytes) override;
  std::vector<std::string> blobs() override;
  std::size_t size() const override;
  void clear() override;

  const std::string& dir() const noexcept { return dir_; }

 private:
  std::vector<std::string> sorted_files() const;  ///< newest first

  std::string dir_;
  std::string prefix_;
  std::string suffix_;
  std::size_t keep_last_;
};

/// Keep-last-K checkpoint storage. latest() returns the newest stored
/// checkpoint that decodes and CRC-validates, silently skipping (but
/// counting, obs "mpisim.checkpoints_corrupt") corrupted ones.
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;
  virtual void put(const Checkpoint& ckpt) = 0;
  virtual std::optional<Checkpoint> latest() = 0;
  /// Checkpoints currently retained (valid or not).
  virtual std::size_t size() const = 0;
};

/// In-process store: encoded blobs in a ring. What tests and library
/// callers use when durability across process death is not the point.
class MemoryCheckpointStore final : public CheckpointStore {
 public:
  explicit MemoryCheckpointStore(int keep_last = 2);
  void put(const Checkpoint& ckpt) override;
  std::optional<Checkpoint> latest() override;
  std::size_t size() const override { return blobs_.size(); }

  /// Test hook: flip one bit of the newest stored blob.
  void corrupt_newest(std::size_t bit) { blobs_.corrupt_newest(bit); }

 private:
  MemoryBlobStore blobs_;
};

/// Directory-backed store: one `ckpt_<next_diagonal>.rrck` per
/// checkpoint, pruned to the newest K. Survives process death — the
/// `bpmax --checkpoint=DIR ... --resume=DIR` path.
class FileCheckpointStore final : public CheckpointStore {
 public:
  /// Creates `dir` if missing; throws std::runtime_error when the
  /// directory cannot be created or written.
  explicit FileCheckpointStore(std::string dir, int keep_last = 2);
  void put(const Checkpoint& ckpt) override;
  std::optional<Checkpoint> latest() override;
  std::size_t size() const override { return blobs_.size(); }

  const std::string& dir() const noexcept { return blobs_.dir(); }

 private:
  FileBlobStore blobs_;
};

}  // namespace rri::mpisim

#endif  // RRI_MPISIM_CHECKPOINT_HPP
