#include "rri/mpisim/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "rri/core/crc32.hpp"
#include "rri/core/serialize.hpp"
#include "rri/obs/obs.hpp"

namespace rri::mpisim {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[4] = {'R', 'R', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;
constexpr char kFilePrefix[] = "ckpt_";
constexpr char kFileSuffix[] = ".rrck";

template <typename T>
void append_pod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T take_pod(const std::string& bytes, std::size_t& pos) {
  if (pos + sizeof(T) > bytes.size()) {
    throw core::SerializeError("truncated checkpoint");
  }
  T value{};
  std::memcpy(&value, bytes.data() + pos, sizeof(T));
  pos += sizeof(T);
  return value;
}

}  // namespace

std::string encode_checkpoint(const Checkpoint& ckpt) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  append_pod(out, kVersion);
  append_pod(out, static_cast<std::int32_t>(ckpt.next_diagonal));
  append_pod(out, static_cast<std::int32_t>(ckpt.total_ranks));
  append_pod(out, static_cast<std::int32_t>(ckpt.alive.size()));
  for (const int rank : ckpt.alive) {
    append_pod(out, static_cast<std::int32_t>(rank));
  }
  std::ostringstream table_stream;
  core::save_ftable(table_stream, ckpt.table);
  out += table_stream.str();
  append_pod(out, core::crc32(out.data(), out.size()));
  return out;
}

Checkpoint decode_checkpoint(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + sizeof(std::uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw core::SerializeError("not an RRCK checkpoint (bad magic)");
  }
  // Integrity first: everything after this line may trust the bytes.
  const std::size_t body = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t footer = 0;
  std::memcpy(&footer, bytes.data() + body, sizeof(footer));
  const std::uint32_t computed = core::crc32(bytes.data(), body);
  if (footer != computed) {
    throw core::SerializeError("checkpoint checksum mismatch (stored CRC32 " +
                               std::to_string(footer) + ", computed " +
                               std::to_string(computed) + ")");
  }
  std::size_t pos = sizeof(kMagic);
  const auto version = take_pod<std::uint32_t>(bytes, pos);
  if (version != kVersion) {
    throw core::SerializeError("unsupported RRCK version " +
                               std::to_string(version));
  }
  Checkpoint ckpt;
  ckpt.next_diagonal = take_pod<std::int32_t>(bytes, pos);
  ckpt.total_ranks = take_pod<std::int32_t>(bytes, pos);
  const auto alive_count = take_pod<std::int32_t>(bytes, pos);
  if (ckpt.next_diagonal < 0 || ckpt.total_ranks < 1 || alive_count < 1 ||
      alive_count > ckpt.total_ranks) {
    throw core::SerializeError("inconsistent checkpoint header");
  }
  for (std::int32_t i = 0; i < alive_count; ++i) {
    ckpt.alive.push_back(take_pod<std::int32_t>(bytes, pos));
  }
  if (pos > body) {
    throw core::SerializeError("truncated checkpoint");
  }
  std::istringstream table_stream(bytes.substr(pos, body - pos));
  ckpt.table = core::load_ftable(table_stream);
  if (ckpt.next_diagonal > ckpt.table.m()) {
    throw core::SerializeError("checkpoint cursor beyond its table");
  }
  return ckpt;
}

// --------------------------------------------------------- MemoryBlobStore

MemoryBlobStore::MemoryBlobStore(int keep_last)
    : keep_last_(keep_last < 1 ? 1 : static_cast<std::size_t>(keep_last)) {}

void MemoryBlobStore::put_blob(std::uint64_t seq, const std::string& bytes) {
  for (auto& [slot_seq, slot_bytes] : slots_) {
    if (slot_seq == seq) {
      slot_bytes = bytes;
      return;
    }
  }
  slots_.emplace_back(seq, bytes);
  while (slots_.size() > keep_last_) {
    slots_.pop_front();
  }
}

std::vector<std::string> MemoryBlobStore::blobs() {
  std::vector<std::string> out;
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    out.push_back(it->second);
  }
  return out;
}

void MemoryBlobStore::corrupt_newest(std::size_t bit) {
  if (slots_.empty()) {
    return;
  }
  std::string& blob = slots_.back().second;
  blob[(bit / 8) % blob.size()] ^= static_cast<char>(1u << (bit % 8));
}

// ----------------------------------------------------------- FileBlobStore

FileBlobStore::FileBlobStore(std::string dir, std::string prefix,
                             std::string suffix, int keep_last)
    : dir_(std::move(dir)),
      prefix_(std::move(prefix)),
      suffix_(std::move(suffix)),
      keep_last_(keep_last < 1 ? 1 : static_cast<std::size_t>(keep_last)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw std::runtime_error("cannot create checkpoint directory " + dir_);
  }
}

std::vector<std::string> FileBlobStore::sorted_files() const {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind(prefix_, 0) == 0 &&
        name.size() > prefix_.size() + suffix_.size() &&
        name.compare(name.size() - suffix_.size(), suffix_.size(),
                     suffix_) == 0) {
      files.push_back(entry.path().string());
    }
  }
  // Zero-padded seq in the name => lexicographic == chronological.
  std::sort(files.begin(), files.end(), std::greater<>());
  return files;
}

void FileBlobStore::put_blob(std::uint64_t seq, const std::string& bytes) {
  // 8-digit padding matches the pre-BlobStore checkpoint file names
  // (ckpt_00000004.rrck), so stores written by older builds stay
  // readable.
  char seq_text[24];
  std::snprintf(seq_text, sizeof(seq_text), "%08llu",
                static_cast<unsigned long long>(seq));
  const std::string name = prefix_ + seq_text + suffix_;
  const fs::path path = fs::path(dir_) / name;
  // Write-then-rename so a crash mid-write leaves no torn file under the
  // final name (a torn temp never matches the prefix scan).
  const fs::path tmp = fs::path(dir_) / (std::string(".tmp_") + name);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error("cannot write checkpoint " + path.string());
    }
  }
  fs::rename(tmp, path);
  const auto files = sorted_files();
  for (std::size_t i = keep_last_; i < files.size(); ++i) {
    std::error_code ec;
    fs::remove(files[i], ec);  // best-effort prune
  }
}

std::vector<std::string> FileBlobStore::blobs() {
  std::vector<std::string> out;
  for (const std::string& file : sorted_files()) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      continue;  // unreadable file: skip; callers count decode failures
    }
    out.push_back(buffer.str());
  }
  return out;
}

std::size_t FileBlobStore::size() const { return sorted_files().size(); }

void FileBlobStore::clear() {
  for (const std::string& file : sorted_files()) {
    std::error_code ec;
    fs::remove(file, ec);  // best-effort, like pruning
  }
}

// ------------------------------------------------- MemoryCheckpointStore

MemoryCheckpointStore::MemoryCheckpointStore(int keep_last)
    : blobs_(keep_last) {}

void MemoryCheckpointStore::put(const Checkpoint& ckpt) {
  blobs_.put_blob(static_cast<std::uint64_t>(ckpt.next_diagonal),
                  encode_checkpoint(ckpt));
  RRI_OBS_COUNTER("mpisim.checkpoints_written", 1);
}

std::optional<Checkpoint> MemoryCheckpointStore::latest() {
  for (const std::string& blob : blobs_.blobs()) {
    try {
      return decode_checkpoint(blob);
    } catch (const core::SerializeError&) {
      RRI_OBS_COUNTER("mpisim.checkpoints_corrupt", 1);
    }
  }
  return std::nullopt;
}

// --------------------------------------------------- FileCheckpointStore

FileCheckpointStore::FileCheckpointStore(std::string dir, int keep_last)
    : blobs_(std::move(dir), kFilePrefix, kFileSuffix, keep_last) {}

void FileCheckpointStore::put(const Checkpoint& ckpt) {
  blobs_.put_blob(static_cast<std::uint64_t>(ckpt.next_diagonal),
                  encode_checkpoint(ckpt));
  RRI_OBS_COUNTER("mpisim.checkpoints_written", 1);
}

std::optional<Checkpoint> FileCheckpointStore::latest() {
  for (const std::string& blob : blobs_.blobs()) {
    try {
      return decode_checkpoint(blob);
    } catch (const core::SerializeError&) {
      RRI_OBS_COUNTER("mpisim.checkpoints_corrupt", 1);
    }
  }
  return std::nullopt;
}

}  // namespace rri::mpisim
