#include "rri/mpisim/dist_bpmax.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <string>

#include "rri/core/detail/triangle_ops.hpp"
#include "rri/harness/flops.hpp"
#include "rri/obs/obs.hpp"
#include "rri/trace/trace.hpp"

namespace rri::mpisim {

namespace {

/// Exact kernel flops of computing inner triangle (i1, j1) for inner
/// length n: the d1 split instances (R0 + R3/R4) plus the finalization
/// (R1/R2 sweeps and the per-cell terms).
double triangle_flops(int d1, int n) {
  const double tn = harness::split_triples(n);
  const double pn = harness::interval_pairs(n);
  return static_cast<double>(d1) * (2.0 * tn + 4.0 * pn)  // R0 + R3 + R4
         + 4.0 * tn                                       // R1 + R2
         + 6.0 * pn;                                      // cell terms
}

}  // namespace

double DistributedResult::simulated_seconds(const ClusterModel& model) const {
  double total = 0.0;
  for (std::size_t step = 0; step < step_max_flops.size(); ++step) {
    total += step_max_flops[step] / model.flops_per_second;
    total += model.alpha_seconds;
    total += static_cast<double>(step_max_bytes[step]) *
             model.beta_seconds_per_byte;
  }
  return total;
}

double DistributedResult::simulated_speedup(const ClusterModel& model) const {
  double total_flops = 0.0;
  for (const double f : rank_flops) {
    total_flops += f;
  }
  const double serial = total_flops / model.flops_per_second;
  const double parallel = simulated_seconds(model);
  return parallel > 0.0 ? serial / parallel : 0.0;
}

DistributedResult distributed_bpmax(const rna::Sequence& strand1,
                                    const rna::Sequence& strand2,
                                    const rna::ScoringModel& model,
                                    int ranks, FaultPlan faults,
                                    const RecoveryPolicy& policy) {
  if (ranks < 1) {
    throw std::invalid_argument("distributed_bpmax needs >= 1 rank");
  }
  if ((policy.checkpoint_every > 0 || policy.resume) &&
      policy.store == nullptr) {
    throw std::invalid_argument(
        "RecoveryPolicy: checkpoint_every/resume need a CheckpointStore");
  }
  DistributedResult result;
  result.ranks = ranks;
  result.rank_flops.assign(static_cast<std::size_t>(ranks), 0.0);

  const int m = static_cast<int>(strand1.size());
  const int n = static_cast<int>(strand2.size());
  if (m == 0 || n == 0) {
    result.score = core::bpmax_score(strand1, strand2, model);
    return result;
  }

  const core::STable s1t(strand1, model);
  const core::STable s2t(strand2, model);
  const rna::ScoreTables scores(strand1, strand2, model);

  BspWorld world(ranks, std::move(faults));
  const std::size_t block_floats =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);

  // Replicated tables, indexed by absolute rank; only participating
  // ranks hold an allocation (a dead rank's memory is gone anyway).
  std::vector<core::FTable> tables(static_cast<std::size_t>(ranks));
  const auto reset_tables = [&](const std::vector<int>& participants,
                                const core::FTable* seed) {
    for (auto& t : tables) {
      t = core::FTable();
    }
    for (const int r : participants) {
      tables[static_cast<std::size_t>(r)] = seed ? *seed : core::FTable(m, n);
    }
  };

  // The deal: participating ranks, ascending; triangle i1 of the current
  // diagonal belongs to deal[i1 % deal.size()]. With every rank alive
  // this reduces to the original block-cyclic i1 % ranks ownership.
  std::vector<int> deal = world.alive_ranks();
  if (deal.empty()) {
    throw std::runtime_error("distributed_bpmax: every rank is dead");
  }
  int d1 = 0;

  if (policy.resume) {
    if (const auto ckpt = policy.store->latest()) {
      if (ckpt->table.m() != m || ckpt->table.n() != n) {
        throw std::runtime_error(
            "resume checkpoint is for a " + std::to_string(ckpt->table.m()) +
            "x" + std::to_string(ckpt->table.n()) +
            " problem, not the given " + std::to_string(m) + "x" +
            std::to_string(n) + " strands");
      }
      d1 = ckpt->next_diagonal;
      result.recovery.resume_diagonal = d1;
      RRI_OBS_COUNTER("mpisim.checkpoint_restores", 1);
      reset_tables(deal, &ckpt->table);
    } else {
      reset_tables(deal, nullptr);
    }
  } else {
    reset_tables(deal, nullptr);
  }

  int retries = 0;
  const auto begin_recovery = [&](const char* counter) {
    if (++retries > policy.max_retries) {
      throw std::runtime_error(
          "distributed_bpmax: recovery budget exhausted (" +
          std::to_string(policy.max_retries) + " retries)");
    }
    result.recovery.recoveries += 1;
    RRI_OBS_COUNTER("mpisim.recoveries", 1);
    RRI_OBS_COUNTER(counter, 1);
    std::optional<Checkpoint> ckpt =
        policy.store ? policy.store->latest() : std::nullopt;
    if (ckpt) {
      d1 = ckpt->next_diagonal;
      result.recovery.checkpoint_restores += 1;
      RRI_OBS_COUNTER("mpisim.checkpoint_restores", 1);
      reset_tables(deal, &ckpt->table);
    } else {
      d1 = 0;
      result.recovery.scratch_restarts += 1;
      reset_tables(deal, nullptr);
    }
  };

  while (d1 < m) {
    // ---- failure detection: did a deal member die since last dealt?
    const bool lost = std::any_of(deal.begin(), deal.end(), [&](int r) {
      return !world.alive(r);
    });
    if (lost) {
      if (!policy.degrade) {
        throw std::runtime_error(
            "distributed_bpmax: rank lost and degrade-to-fewer-ranks "
            "is disabled");
      }
      deal = world.alive_ranks();
      if (deal.empty()) {
        throw std::runtime_error("distributed_bpmax: every rank is dead");
      }
      begin_recovery("mpisim.crash_recoveries");
      continue;
    }

    // ---- one superstep: compute + exchange + install, per diagonal.
    RRI_OBS_PHASE(obs::Phase::kSuperstep);
    std::vector<double> step_flops(static_cast<std::size_t>(ranks), 0.0);
    for (std::size_t p = 0; p < deal.size(); ++p) {
      const int r = deal[p];
      // Ranks run sequentially in-process, but each gets its own trace
      // lane: events of rank r's turn land on (kProcRanks, r), so the
      // viewer shows superstep skew as if ranks were real processes.
      RRI_TRACE_LANE(trace::kProcRanks, r);
      RRI_TRACE_SPAN("rank.compute");
      core::FTable& f = tables[static_cast<std::size_t>(r)];
      for (int i1 = static_cast<int>(p); i1 + d1 < m;
           i1 += static_cast<int>(deal.size())) {
        const int j1 = i1 + d1;
        float* acc = f.block(i1, j1);
        for (int k1 = i1; k1 < j1; ++k1) {
          core::detail::maxplus_instance_rows(
              acc, f.block(i1, k1), f.block(k1 + 1, j1), s1t.at(k1 + 1, j1),
              s1t.at(i1, k1), n, 0, n);
        }
        core::detail::finalize_triangle(f, s1t, s2t, scores, i1, j1);
        step_flops[static_cast<std::size_t>(r)] += triangle_flops(d1, n);
        // Publish the finished block to the other deal members; the tag
        // carries i1 (j1 = i1 + d1).
        const float* block = f.block(i1, j1);
        for (const int to : deal) {
          if (to != r) {
            world.send(r, to, i1,
                       std::vector<float>(block, block + block_floats));
          }
        }
      }
    }
    world.barrier();
    std::size_t max_bytes = 0;
    std::size_t step_bytes = 0;
    for (const std::size_t b : world.last_step_sent_bytes()) {
      max_bytes = std::max(max_bytes, b);
      step_bytes += b;
    }
#if RRI_OBS_ENABLED
    if (obs::enabled()) {
      double step_total_flops = 0.0;
      for (const double fl : step_flops) {
        step_total_flops += fl;
      }
      obs::add_flops(obs::Phase::kSuperstep, step_total_flops);
      obs::add_bytes(obs::Phase::kSuperstep,
                     static_cast<double>(step_bytes));
    }
#else
    (void)step_bytes;
#endif

    // ---- install with validation: every surviving deal member must
    // hold exactly one intact copy of every block it does not own.
    // (Ranks killed at this barrier finished their sends — BSP crash
    // semantics — so survivors still have a complete superstep.)
    bool corrupt = false;
    for (const int r : deal) {
      if (!world.alive(r)) {
        continue;  // leaves the deal at the top of the next iteration
      }
      RRI_TRACE_LANE(trace::kProcRanks, r);
      RRI_TRACE_SPAN("rank.install");
      core::FTable& f = tables[static_cast<std::size_t>(r)];
      auto msgs = world.receive(r);
      std::map<int, int> copies;  // tag (= i1) -> intact copies received
      for (const Message& msg : msgs) {
        if (!msg.intact()) {
          corrupt = true;
        } else {
          copies[msg.tag] += 1;
        }
      }
      for (int i1 = 0; i1 + d1 < m; ++i1) {
        const int owner = deal[static_cast<std::size_t>(i1) % deal.size()];
        const int want = owner == r ? 0 : 1;
        if (copies[i1] != want) {
          corrupt = true;  // dropped, duplicated, or corrupted block
        }
      }
      if (corrupt) {
        continue;  // rolling back anyway; skip the installs
      }
      for (Message& msg : msgs) {
        const int i1 = msg.tag;
        std::copy(msg.payload.begin(), msg.payload.end(),
                  f.block(i1, i1 + d1));
      }
    }
    if (corrupt) {
      result.recovery.corrupt_supersteps += 1;
      begin_recovery("mpisim.corrupt_supersteps");
      continue;
    }

    // ---- bookkeeping + periodic checkpoint, then the next diagonal.
    for (int r = 0; r < ranks; ++r) {
      result.rank_flops[static_cast<std::size_t>(r)] +=
          step_flops[static_cast<std::size_t>(r)];
    }
    result.step_max_flops.push_back(
        *std::max_element(step_flops.begin(), step_flops.end()));
    result.step_max_bytes.push_back(max_bytes);
    if (policy.checkpoint_every > 0 &&
        (d1 + 1) % policy.checkpoint_every == 0) {
      const auto live = std::find_if(deal.begin(), deal.end(), [&](int r) {
        return world.alive(r);
      });
      if (live != deal.end()) {
        Checkpoint ckpt;
        ckpt.next_diagonal = d1 + 1;
        ckpt.total_ranks = ranks;
        ckpt.alive = world.alive_ranks();
        ckpt.table = tables[static_cast<std::size_t>(*live)];
        policy.store->put(ckpt);
        result.recovery.checkpoints_written += 1;
      }
    }
    ++d1;
  }

  result.comm = world.stats();
  result.recovery.ranks_lost = ranks - world.alive_count();
  result.fault_events = world.fault_events();
#if RRI_OBS_ENABLED
  if (obs::enabled()) {
    obs::add_counter("bsp.supersteps",
                     static_cast<double>(result.comm.supersteps));
    obs::add_counter("bsp.messages",
                     static_cast<double>(result.comm.messages));
    obs::add_counter("bsp.bytes", static_cast<double>(result.comm.bytes));
    for (int r = 0; r < ranks; ++r) {
      const std::string prefix = "bsp.rank" + std::to_string(r);
      obs::add_counter(
          (prefix + ".sent_bytes").c_str(),
          static_cast<double>(
              world.rank_sent_bytes()[static_cast<std::size_t>(r)]));
      obs::add_counter(
          (prefix + ".recv_bytes").c_str(),
          static_cast<double>(
              world.rank_recv_bytes()[static_cast<std::size_t>(r)]));
    }
  }
#endif
  // A rank that survived to the end installed every diagonal; fall back
  // to the first deal member (killed at the final barrier at worst: its
  // replica still holds the root block it computed or installed).
  int authoritative = deal.front();
  for (const int r : deal) {
    if (world.alive(r)) {
      authoritative = r;
      break;
    }
  }
  result.table = std::move(tables[static_cast<std::size_t>(authoritative)]);
  result.score = result.table.at(0, m - 1, 0, n - 1);
  return result;
}

DistributedResult predict_distributed_bpmax(int m, int n, int ranks) {
  if (ranks < 1) {
    throw std::invalid_argument("predict_distributed_bpmax needs >= 1 rank");
  }
  DistributedResult result;
  result.ranks = ranks;
  result.rank_flops.assign(static_cast<std::size_t>(ranks), 0.0);
  if (m <= 0 || n <= 0) {
    return result;
  }
  const std::size_t block_bytes = static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(n) * sizeof(float);
  for (int d1 = 0; d1 < m; ++d1) {
    const int triangles = m - d1;
    double max_flops = 0.0;
    std::size_t max_bytes = 0;
    for (int r = 0; r < ranks; ++r) {
      // Block-cyclic ownership: i1 in {r, r+P, ...} below `triangles`.
      const int owned = r < triangles ? (triangles - 1 - r) / ranks + 1 : 0;
      const double flops = owned * triangle_flops(d1, n);
      result.rank_flops[static_cast<std::size_t>(r)] += flops;
      max_flops = std::max(max_flops, flops);
      if (ranks > 1) {
        const std::size_t bytes =
            static_cast<std::size_t>(owned) * block_bytes *
            static_cast<std::size_t>(ranks - 1);
        max_bytes = std::max(max_bytes, bytes);
        result.comm.messages +=
            static_cast<std::size_t>(owned) *
            static_cast<std::size_t>(ranks - 1);
        result.comm.bytes += static_cast<std::size_t>(owned) * block_bytes *
                             static_cast<std::size_t>(ranks - 1);
      }
    }
    result.step_max_flops.push_back(max_flops);
    result.step_max_bytes.push_back(max_bytes);
    result.comm.supersteps += 1;
  }
  return result;
}

}  // namespace rri::mpisim
