#include "rri/mpisim/dist_bpmax.hpp"

#include <algorithm>

#include <string>

#include "rri/core/detail/triangle_ops.hpp"
#include "rri/harness/flops.hpp"
#include "rri/obs/obs.hpp"

namespace rri::mpisim {

namespace {

/// Exact kernel flops of computing inner triangle (i1, j1) for inner
/// length n: the d1 split instances (R0 + R3/R4) plus the finalization
/// (R1/R2 sweeps and the per-cell terms).
double triangle_flops(int d1, int n) {
  const double tn = harness::split_triples(n);
  const double pn = harness::interval_pairs(n);
  return static_cast<double>(d1) * (2.0 * tn + 4.0 * pn)  // R0 + R3 + R4
         + 4.0 * tn                                       // R1 + R2
         + 6.0 * pn;                                      // cell terms
}

}  // namespace

double DistributedResult::simulated_seconds(const ClusterModel& model) const {
  double total = 0.0;
  for (std::size_t step = 0; step < step_max_flops.size(); ++step) {
    total += step_max_flops[step] / model.flops_per_second;
    total += model.alpha_seconds;
    total += static_cast<double>(step_max_bytes[step]) *
             model.beta_seconds_per_byte;
  }
  return total;
}

double DistributedResult::simulated_speedup(const ClusterModel& model) const {
  double total_flops = 0.0;
  for (const double f : rank_flops) {
    total_flops += f;
  }
  const double serial = total_flops / model.flops_per_second;
  const double parallel = simulated_seconds(model);
  return parallel > 0.0 ? serial / parallel : 0.0;
}

DistributedResult distributed_bpmax(const rna::Sequence& strand1,
                                    const rna::Sequence& strand2,
                                    const rna::ScoringModel& model,
                                    int ranks) {
  if (ranks < 1) {
    throw std::invalid_argument("distributed_bpmax needs >= 1 rank");
  }
  DistributedResult result;
  result.ranks = ranks;
  result.rank_flops.assign(static_cast<std::size_t>(ranks), 0.0);

  const int m = static_cast<int>(strand1.size());
  const int n = static_cast<int>(strand2.size());
  if (m == 0 || n == 0) {
    result.score = core::bpmax_score(strand1, strand2, model);
    return result;
  }

  const core::STable s1t(strand1, model);
  const core::STable s2t(strand2, model);
  const rna::ScoreTables scores(strand1, strand2, model);

  // Replicated tables: one full F-table per rank.
  std::vector<core::FTable> tables;
  tables.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    tables.emplace_back(m, n);
  }

  BspWorld world(ranks);
  const std::size_t block_floats =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);

  for (int d1 = 0; d1 < m; ++d1) {
    // One superstep per diagonal: compute + broadcast + barrier + install.
    RRI_OBS_PHASE(obs::Phase::kSuperstep);
    std::vector<double> step_flops(static_cast<std::size_t>(ranks), 0.0);
    // Compute phase: block-cyclic ownership of the diagonal's triangles.
    for (int r = 0; r < ranks; ++r) {
      core::FTable& f = tables[static_cast<std::size_t>(r)];
      for (int i1 = r; i1 + d1 < m; i1 += ranks) {
        const int j1 = i1 + d1;
        float* acc = f.block(i1, j1);
        for (int k1 = i1; k1 < j1; ++k1) {
          core::detail::maxplus_instance_rows(
              acc, f.block(i1, k1), f.block(k1 + 1, j1), s1t.at(k1 + 1, j1),
              s1t.at(i1, k1), n, 0, n);
        }
        core::detail::finalize_triangle(f, s1t, s2t, scores, i1, j1);
        step_flops[static_cast<std::size_t>(r)] += triangle_flops(d1, n);
        // Publish the finished block; the tag carries i1 (j1 = i1 + d1).
        const float* block = f.block(i1, j1);
        world.broadcast(r, i1,
                        std::vector<float>(block, block + block_floats));
      }
    }
    world.barrier();
    // Install phase: copy received blocks into each rank's replica.
    std::size_t max_bytes = 0;
    std::size_t step_bytes = 0;
    for (const std::size_t b : world.last_step_sent_bytes()) {
      max_bytes = std::max(max_bytes, b);
      step_bytes += b;
    }
#if RRI_OBS_ENABLED
    if (obs::enabled()) {
      double step_total_flops = 0.0;
      for (const double fl : step_flops) {
        step_total_flops += fl;
      }
      obs::add_flops(obs::Phase::kSuperstep, step_total_flops);
      obs::add_bytes(obs::Phase::kSuperstep,
                     static_cast<double>(step_bytes));
    }
#else
    (void)step_bytes;
#endif
    for (int r = 0; r < ranks; ++r) {
      core::FTable& f = tables[static_cast<std::size_t>(r)];
      for (Message& msg : world.receive(r)) {
        const int i1 = msg.tag;
        std::copy(msg.payload.begin(), msg.payload.end(),
                  f.block(i1, i1 + d1));
      }
    }
    for (int r = 0; r < ranks; ++r) {
      result.rank_flops[static_cast<std::size_t>(r)] +=
          step_flops[static_cast<std::size_t>(r)];
    }
    result.step_max_flops.push_back(
        *std::max_element(step_flops.begin(), step_flops.end()));
    result.step_max_bytes.push_back(max_bytes);
  }

  result.comm = world.stats();
#if RRI_OBS_ENABLED
  if (obs::enabled()) {
    obs::add_counter("bsp.supersteps",
                     static_cast<double>(result.comm.supersteps));
    obs::add_counter("bsp.messages",
                     static_cast<double>(result.comm.messages));
    obs::add_counter("bsp.bytes", static_cast<double>(result.comm.bytes));
    for (int r = 0; r < ranks; ++r) {
      const std::string prefix = "bsp.rank" + std::to_string(r);
      obs::add_counter(
          (prefix + ".sent_bytes").c_str(),
          static_cast<double>(
              world.rank_sent_bytes()[static_cast<std::size_t>(r)]));
      obs::add_counter(
          (prefix + ".recv_bytes").c_str(),
          static_cast<double>(
              world.rank_recv_bytes()[static_cast<std::size_t>(r)]));
    }
  }
#endif
  result.score = tables[0].at(0, m - 1, 0, n - 1);
  return result;
}

DistributedResult predict_distributed_bpmax(int m, int n, int ranks) {
  if (ranks < 1) {
    throw std::invalid_argument("predict_distributed_bpmax needs >= 1 rank");
  }
  DistributedResult result;
  result.ranks = ranks;
  result.rank_flops.assign(static_cast<std::size_t>(ranks), 0.0);
  if (m <= 0 || n <= 0) {
    return result;
  }
  const std::size_t block_bytes = static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(n) * sizeof(float);
  for (int d1 = 0; d1 < m; ++d1) {
    const int triangles = m - d1;
    double max_flops = 0.0;
    std::size_t max_bytes = 0;
    for (int r = 0; r < ranks; ++r) {
      // Block-cyclic ownership: i1 in {r, r+P, ...} below `triangles`.
      const int owned = r < triangles ? (triangles - 1 - r) / ranks + 1 : 0;
      const double flops = owned * triangle_flops(d1, n);
      result.rank_flops[static_cast<std::size_t>(r)] += flops;
      max_flops = std::max(max_flops, flops);
      if (ranks > 1) {
        const std::size_t bytes =
            static_cast<std::size_t>(owned) * block_bytes *
            static_cast<std::size_t>(ranks - 1);
        max_bytes = std::max(max_bytes, bytes);
        result.comm.messages +=
            static_cast<std::size_t>(owned) *
            static_cast<std::size_t>(ranks - 1);
        result.comm.bytes += static_cast<std::size_t>(owned) * block_bytes *
                             static_cast<std::size_t>(ranks - 1);
      }
    }
    result.step_max_flops.push_back(max_flops);
    result.step_max_bytes.push_back(max_bytes);
    result.comm.supersteps += 1;
  }
  return result;
}

}  // namespace rri::mpisim
