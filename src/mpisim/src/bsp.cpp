#include "rri/mpisim/bsp.hpp"

#include <algorithm>

namespace rri::mpisim {

BspWorld::BspWorld(int ranks)
    : ranks_(ranks),
      in_flight_(static_cast<std::size_t>(ranks)),
      delivered_(static_cast<std::size_t>(ranks)),
      current_sent_bytes_(static_cast<std::size_t>(ranks), 0),
      last_sent_bytes_(static_cast<std::size_t>(ranks), 0),
      rank_sent_bytes_(static_cast<std::size_t>(ranks), 0),
      rank_recv_bytes_(static_cast<std::size_t>(ranks), 0) {
  if (ranks < 1) {
    throw std::invalid_argument("BspWorld needs at least one rank");
  }
}

void BspWorld::send(int from, int to, int tag, std::vector<float> payload) {
  check_rank(from);
  check_rank(to);
  const std::size_t bytes = payload.size() * sizeof(float);
  stats_.messages += 1;
  stats_.bytes += bytes;
  current_sent_bytes_[static_cast<std::size_t>(from)] += bytes;
  rank_sent_bytes_[static_cast<std::size_t>(from)] += bytes;
  in_flight_[static_cast<std::size_t>(to)].push_back(
      Message{from, tag, std::move(payload)});
}

void BspWorld::broadcast(int from, int tag,
                         const std::vector<float>& payload) {
  for (int to = 0; to < ranks_; ++to) {
    if (to != from) {
      send(from, to, tag, payload);
    }
  }
}

void BspWorld::barrier() {
  for (int rank = 0; rank < ranks_; ++rank) {
    auto& inbox = delivered_[static_cast<std::size_t>(rank)];
    auto& buffered = in_flight_[static_cast<std::size_t>(rank)];
    for (const Message& msg : buffered) {
      rank_recv_bytes_[static_cast<std::size_t>(rank)] +=
          msg.payload.size() * sizeof(float);
    }
    inbox.insert(inbox.end(), std::make_move_iterator(buffered.begin()),
                 std::make_move_iterator(buffered.end()));
    buffered.clear();
  }
  last_sent_bytes_ = current_sent_bytes_;
  current_sent_bytes_.assign(static_cast<std::size_t>(ranks_), 0);
  stats_.supersteps += 1;
}

std::vector<Message> BspWorld::receive(int rank) {
  check_rank(rank);
  auto& inbox = delivered_[static_cast<std::size_t>(rank)];
  // Deterministic order: stable by sender then send order. Messages were
  // appended in send order across senders; sort stably by sender.
  std::stable_sort(inbox.begin(), inbox.end(),
                   [](const Message& a, const Message& b) {
                     return a.from < b.from;
                   });
  std::vector<Message> out = std::move(inbox);
  inbox.clear();
  return out;
}

std::size_t BspWorld::pending(int rank) const {
  check_rank(rank);
  return delivered_[static_cast<std::size_t>(rank)].size();
}

}  // namespace rri::mpisim
