#include "rri/mpisim/bsp.hpp"

#include <algorithm>

#include "rri/core/crc32.hpp"
#include "rri/obs/obs.hpp"
#include "rri/trace/trace.hpp"

namespace rri::mpisim {

namespace {

std::uint32_t payload_crc(const std::vector<float>& payload) noexcept {
  return core::crc32(payload.data(), payload.size() * sizeof(float));
}

}  // namespace

bool Message::intact() const noexcept { return payload_crc(payload) == crc; }

BspWorld::BspWorld(int ranks, FaultPlan plan)
    : ranks_(ranks),
      plan_(std::move(plan)),
      alive_(static_cast<std::size_t>(ranks), 1),
      in_flight_(static_cast<std::size_t>(ranks)),
      delivered_(static_cast<std::size_t>(ranks)),
      current_sent_bytes_(static_cast<std::size_t>(ranks), 0),
      last_sent_bytes_(static_cast<std::size_t>(ranks), 0),
      rank_sent_bytes_(static_cast<std::size_t>(ranks), 0),
      rank_recv_bytes_(static_cast<std::size_t>(ranks), 0) {
  if (ranks < 1) {
    throw std::invalid_argument("BspWorld needs at least one rank");
  }
  apply_crashes();  // step-0 crashes: dead before any compute
}

void BspWorld::apply_crashes() {
  for (const int rank : plan_.crashes_at(stats_.supersteps)) {
    if (rank < 0 || rank >= ranks_ ||
        !alive_[static_cast<std::size_t>(rank)]) {
      continue;  // out-of-world or already-dead crash targets are no-ops
    }
    alive_[static_cast<std::size_t>(rank)] = 0;
    // A dead rank receives nothing: discard anything already queued.
    delivered_[static_cast<std::size_t>(rank)].clear();
    in_flight_[static_cast<std::size_t>(rank)].clear();
    fault_events_.push_back(
        FaultEvent{FaultKind::kCrash, stats_.supersteps, rank, -1, -1, 0});
    RRI_OBS_COUNTER("mpisim.faults_injected", 1);
    RRI_OBS_COUNTER("mpisim.ranks_crashed", 1);
  }
}

void BspWorld::enqueue(int from, int to, int tag, std::vector<float> payload,
                       std::uint32_t crc) {
  std::uint64_t trace_id = 0;
#if RRI_TRACE_ENABLED
  if (trace::enabled()) {
    // The caller's lane is the sending rank's (dist_bpmax wraps each
    // rank's turn in a LaneScope), so the arrow starts on that lane.
    trace_id = trace::next_flow_id();
    trace::flow_out("bsp.msg", trace_id);
  }
#endif
  in_flight_[static_cast<std::size_t>(to)].push_back(
      Message{from, tag, std::move(payload), crc, trace_id});
}

void BspWorld::send(int from, int to, int tag, std::vector<float> payload) {
  check_rank(from);
  check_rank(to);
  if (!alive_[static_cast<std::size_t>(from)]) {
    throw std::logic_error("send from dead rank " + std::to_string(from) +
                           " at superstep " +
                           std::to_string(stats_.supersteps));
  }
  const std::size_t bytes = payload.size() * sizeof(float);
  stats_.messages += 1;
  stats_.bytes += bytes;
  current_sent_bytes_[static_cast<std::size_t>(from)] += bytes;
  rank_sent_bytes_[static_cast<std::size_t>(from)] += bytes;
  if (!alive_[static_cast<std::size_t>(to)]) {
    return;  // packets to a powered-off host vanish
  }
  const std::uint32_t crc = payload_crc(payload);
  if (plan_.has_message_faults()) {
    if (plan_.draw_drop()) {
      fault_events_.push_back(
          FaultEvent{FaultKind::kDrop, stats_.supersteps, to, from, tag, 0});
      RRI_OBS_COUNTER("mpisim.faults_injected", 1);
      RRI_OBS_COUNTER("mpisim.messages_dropped", 1);
      return;
    }
    if (plan_.draw_duplicate()) {
      fault_events_.push_back(FaultEvent{FaultKind::kDuplicate,
                                         stats_.supersteps, to, from, tag, 0});
      RRI_OBS_COUNTER("mpisim.faults_injected", 1);
      RRI_OBS_COUNTER("mpisim.messages_duplicated", 1);
      enqueue(from, to, tag, payload, crc);  // first copy
    }
    const std::size_t bit = plan_.draw_flip_bit(bytes * 8);
    if (bit != SIZE_MAX) {
      fault_events_.push_back(FaultEvent{FaultKind::kBitFlip,
                                         stats_.supersteps, to, from, tag,
                                         bit});
      RRI_OBS_COUNTER("mpisim.faults_injected", 1);
      RRI_OBS_COUNTER("mpisim.bits_flipped", 1);
      auto* bytes_view = reinterpret_cast<unsigned char*>(payload.data());
      bytes_view[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      // crc stays the pre-flip stamp: intact() now reports false.
    }
  }
  enqueue(from, to, tag, std::move(payload), crc);
}

void BspWorld::broadcast(int from, int tag,
                         const std::vector<float>& payload) {
  for (int to = 0; to < ranks_; ++to) {
    if (to != from) {
      send(from, to, tag, payload);
    }
  }
}

void BspWorld::barrier() {
  for (int rank = 0; rank < ranks_; ++rank) {
    auto& inbox = delivered_[static_cast<std::size_t>(rank)];
    auto& buffered = in_flight_[static_cast<std::size_t>(rank)];
    for (const Message& msg : buffered) {
      rank_recv_bytes_[static_cast<std::size_t>(rank)] +=
          msg.payload.size() * sizeof(float);
    }
    inbox.insert(inbox.end(), std::make_move_iterator(buffered.begin()),
                 std::make_move_iterator(buffered.end()));
    buffered.clear();
  }
  last_sent_bytes_ = current_sent_bytes_;
  current_sent_bytes_.assign(static_cast<std::size_t>(ranks_), 0);
  stats_.supersteps += 1;
  apply_crashes();  // ranks scheduled to die at the new superstep
}

std::vector<Message> BspWorld::receive(int rank) {
  check_rank(rank);
  auto& inbox = delivered_[static_cast<std::size_t>(rank)];
  // Deterministic order: stable by sender then send order. Messages were
  // appended in send order across senders; sort stably by sender.
  std::stable_sort(inbox.begin(), inbox.end(),
                   [](const Message& a, const Message& b) {
                     return a.from < b.from;
                   });
  std::vector<Message> out = std::move(inbox);
  inbox.clear();
#if RRI_TRACE_ENABLED
  if (trace::enabled()) {
    for (const Message& msg : out) {
      if (msg.trace_id != 0) {
        trace::flow_in("bsp.msg", msg.trace_id);
      }
    }
  }
#endif
  return out;
}

std::size_t BspWorld::pending(int rank) const {
  check_rank(rank);
  return delivered_[static_cast<std::size_t>(rank)].size();
}

bool BspWorld::alive(int rank) const {
  check_rank(rank);
  return alive_[static_cast<std::size_t>(rank)] != 0;
}

int BspWorld::alive_count() const noexcept {
  int count = 0;
  for (const char a : alive_) {
    count += a != 0;
  }
  return count;
}

std::vector<int> BspWorld::alive_ranks() const {
  std::vector<int> ranks;
  for (int r = 0; r < ranks_; ++r) {
    if (alive_[static_cast<std::size_t>(r)]) {
      ranks.push_back(r);
    }
  }
  return ranks;
}

}  // namespace rri::mpisim
