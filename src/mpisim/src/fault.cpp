#include "rri/mpisim/fault.hpp"

#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace rri::mpisim {

const char* fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kBitFlip:
      return "bit_flip";
  }
  return "?";
}

bool operator==(const FaultEvent& a, const FaultEvent& b) noexcept {
  return a.kind == b.kind && a.superstep == b.superstep && a.rank == b.rank &&
         a.from == b.from && a.tag == b.tag && a.bit == b.bit;
}

namespace {

[[noreturn]] void bad_spec(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("bad fault clause '" + clause + "': " + why);
}

/// "rank=2,step=7" -> {rank: "2", step: "7"}; duplicate keys rejected.
std::map<std::string, std::string> parse_kv(const std::string& clause,
                                            const std::string& body) {
  std::map<std::string, std::string> out;
  std::istringstream in(body);
  std::string pair;
  while (std::getline(in, pair, ',')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      bad_spec(clause, "expected key=value, got '" + pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    if (!out.emplace(key, pair.substr(eq + 1)).second) {
      bad_spec(clause, "duplicate key '" + key + "'");
    }
  }
  return out;
}

long long parse_int(const std::string& clause, const std::string& key,
                    const std::string& text) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    bad_spec(clause, key + " must be an integer, got '" + text + "'");
  }
  return value;
}

double parse_probability(const std::string& clause, const std::string& text) {
  char* end = nullptr;
  const double p = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !(p >= 0.0) || !(p <= 1.0)) {
    bad_spec(clause, "p must be a probability in [0, 1], got '" + text + "'");
  }
  return p;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream in(spec);
  std::string clause;
  while (std::getline(in, clause, ';')) {
    if (clause.empty()) {
      continue;
    }
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      bad_spec(clause, "expected kind:key=value,...");
    }
    const std::string kind = clause.substr(0, colon);
    auto kv = parse_kv(clause, clause.substr(colon + 1));
    const auto take = [&](const char* key, bool required,
                          const std::string& fallback) {
      const auto it = kv.find(key);
      if (it == kv.end()) {
        if (required) {
          bad_spec(clause, std::string("missing ") + key + "=");
        }
        return fallback;
      }
      std::string value = it->second;
      kv.erase(it);
      return value;
    };
    if (kind == "crash") {
      const long long rank = parse_int(clause, "rank", take("rank", true, ""));
      const long long step = parse_int(clause, "step", take("step", true, ""));
      if (rank < 0 || step < 0) {
        bad_spec(clause, "rank and step must be >= 0");
      }
      plan.add_crash(static_cast<int>(rank),
                     static_cast<std::size_t>(step));
    } else if (kind == "drop" || kind == "dup" || kind == "flip") {
      const double p = parse_probability(clause, take("p", true, ""));
      const std::uint64_t seed = static_cast<std::uint64_t>(parse_int(
          clause, "seed", take("seed", false, std::to_string(kDefaultSeed))));
      if (kind == "drop") {
        plan.add_drop(p, seed);
      } else if (kind == "dup") {
        plan.add_duplicate(p, seed);
      } else {
        plan.add_bit_flip(p, seed);
      }
    } else {
      bad_spec(clause, "unknown kind '" + kind +
                           "' (expected crash, drop, dup, or flip)");
    }
    if (!kv.empty()) {
      bad_spec(clause, "unknown key '" + kv.begin()->first + "'");
    }
  }
  return plan;
}

void FaultPlan::add_crash(int rank, std::size_t step) {
  crashes_.push_back(Crash{rank, step});
}

void FaultPlan::add_drop(double p, std::uint64_t seed) {
  drop_p_ = p;
  drop_rng_.seed(seed);
}

void FaultPlan::add_duplicate(double p, std::uint64_t seed) {
  dup_p_ = p;
  dup_rng_.seed(seed);
}

void FaultPlan::add_bit_flip(double p, std::uint64_t seed) {
  flip_p_ = p;
  flip_rng_.seed(seed);
}

bool FaultPlan::empty() const noexcept {
  return crashes_.empty() && !has_message_faults();
}

bool FaultPlan::has_message_faults() const noexcept {
  return drop_p_ > 0.0 || dup_p_ > 0.0 || flip_p_ > 0.0;
}

std::vector<int> FaultPlan::crashes_at(std::size_t step) const {
  std::vector<int> ranks;
  for (const Crash& c : crashes_) {
    if (c.step == step) {
      ranks.push_back(c.rank);
    }
  }
  return ranks;
}

bool FaultPlan::draw_drop() {
  return drop_p_ > 0.0 && unit_draw(drop_rng_) < drop_p_;
}

bool FaultPlan::draw_duplicate() {
  return dup_p_ > 0.0 && unit_draw(dup_rng_) < dup_p_;
}

std::size_t FaultPlan::draw_flip_bit(std::size_t payload_bits) {
  if (flip_p_ <= 0.0 || payload_bits == 0 ||
      unit_draw(flip_rng_) >= flip_p_) {
    return SIZE_MAX;
  }
  return static_cast<std::size_t>(flip_rng_()) % payload_bits;
}

}  // namespace rri::mpisim
