#ifndef RRI_TRACE_TRACE_HPP
#define RRI_TRACE_TRACE_HPP

/// \file trace.hpp
/// Per-event timeline recording (rri::trace): a low-overhead span
/// recorder whose output loads into chrome://tracing / Perfetto.
///
/// Where rri::obs answers "how much time did each phase take in
/// aggregate", rri::trace answers "where did each thread spend it" —
/// one lane per OpenMP thread inside the solver variants, one lane per
/// simulated BSP rank in mpisim (supersteps as spans, sends/recvs as
/// flow events), one lane per batch-serving worker (queue-wait vs.
/// execute). rri::obs::ScopedPhase piggy-backs here automatically, so
/// every existing RRI_OBS_PHASE hook point already emits a span when
/// tracing is on.
///
/// Recording is lock-free on the hot path: each thread owns a
/// fixed-capacity ring buffer (drop-oldest, with a dropped-span
/// counter), allocated on first use and registered with a global list
/// only once. A span record is two steady_clock reads plus one slab
/// write. Span names must be string literals (or otherwise outlive the
/// trace) — they are stored by pointer, never copied.
///
/// Serialization (write_chrome_json) walks every registered buffer and
/// must only run at quiescence — after parallel regions have joined,
/// or from the process-exit hook. That is the one cross-thread touch
/// point and it is the reader's responsibility, not the recorder's.
///
/// Activation mirrors rri::obs: compile-time via RRI_TRACE_ENABLED
/// (tied to the RRI_OBS CMake switch), run-time via set_enabled() /
/// the RRI_TRACE=path.json environment variable (handled by rri_obs's
/// env hook, which also enables obs recording so the phase scopes
/// fire).

#ifndef RRI_TRACE_ENABLED
#define RRI_TRACE_ENABLED 1
#endif

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

namespace rri::trace {

/// Fixed lane namespaces (Chrome trace "pid"): every event belongs to
/// one timeline process so the viewer groups related lanes together.
inline constexpr int kProcMain = 1;   ///< main thread + OpenMP workers
inline constexpr int kProcRanks = 2;  ///< simulated BSP ranks (mpisim)
inline constexpr int kProcServe = 3;  ///< batch-serving workers
inline constexpr int kProcDaemon = 4;  ///< rri_served connection handlers

/// A timeline lane: (pid, tid) in Chrome trace terms.
struct Lane {
  int pid = kProcMain;
  int tid = 0;
};

/// Runtime toggle (off by default; RRI_TRACE=path turns it on at load
/// via the rri_obs environment hook).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// The lane events recorded by this thread currently land on. Default:
/// kProcMain with a tid assigned in thread-registration order (main
/// thread first).
Lane current_lane() noexcept;

/// Ring capacity (spans per thread) for buffers created *after* the
/// call. Default 65536, overridable with RRI_TRACE_CAPACITY.
void set_default_capacity(std::size_t spans) noexcept;
std::size_t default_capacity() noexcept;

/// Open / close a span on this thread's current lane. Nesting is
/// tracked per thread (closing order must mirror opening order, which
/// RAII guarantees); end_span with nothing open is a no-op. Spans
/// shorter than min_span_ns (RRI_TRACE_MIN_US) are counted but not
/// stored.
void begin_span(const char* name) noexcept;
void end_span() noexcept;

/// A zero-duration marker on the current lane.
void instant(const char* name) noexcept;

/// Flow events: a directed arrow between two spans, e.g. a BSP send
/// and the receive that consumes it. Allocate an id once per logical
/// message with next_flow_id(), record flow_out at the producer and
/// flow_in (same id) at the consumer.
std::uint64_t next_flow_id() noexcept;
void flow_out(const char* name, std::uint64_t id) noexcept;
void flow_in(const char* name, std::uint64_t id) noexcept;

/// RAII span; cheap when disabled (one relaxed atomic load).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (enabled()) {
      begin_span(name);
      active_ = true;
    }
  }
  ~ScopedSpan() {
    if (active_) {
      end_span();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
};

/// RAII lane override for this thread: mpisim sets (kProcRanks, rank)
/// around each simulated rank's turn, the serve engine sets
/// (kProcServe, worker) for a worker thread's whole loop. Restores the
/// previous lane on destruction. Active even while tracing is disabled
/// (it only touches a thread_local), so a mid-run set_enabled(true)
/// lands events on the right lane.
class LaneScope {
 public:
  LaneScope(int pid, int tid) noexcept;
  ~LaneScope();
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  Lane saved_;
};

struct TraceStats {
  std::size_t recorded = 0;  ///< events currently held across buffers
  std::size_t dropped = 0;   ///< overwritten by ring wrap (drop-oldest)
  std::size_t filtered = 0;  ///< discarded by the min-duration filter
};
TraceStats stats();

/// Drop every recorded event and zero the counters. Buffers stay
/// registered (threads keep their lanes). Call at quiescence only.
void reset();

// ------------------------------------------------------ hw counters
/// Hardware-counter summary attached to the trace (and mirrored into
/// obs counters by the CLIs). Backend 0 = unavailable, 1 = perf_event.
struct HwSummary {
  int backend = 0;
  double cycles = 0.0;
  double instructions = 0.0;
  double task_clock_ns = 0.0;

  bool valid() const noexcept { return backend != 0; }
  double ipc() const noexcept {
    return cycles > 0.0 ? instructions / cycles : 0.0;
  }
};
const char* hw_backend_name(int backend) noexcept;

/// Start the process-global hardware sampler (idempotent). Probes
/// perf_event_open on Linux; anywhere it cannot (non-Linux, seccomp,
/// perf_event_paranoid, RRI_HW=off) the summary degrades to
/// backend=unavailable and everything else keeps working.
void start_hw() noexcept;

/// Read the sampler without stopping it (zeros when unavailable).
HwSummary read_hw() noexcept;

// ---------------------------------------------------- serialization
/// Serialize every registered buffer as Chrome trace-event JSON
/// ({"traceEvents": [...], ...}): complete "X" events with ts/dur in
/// microseconds since the trace epoch, metadata naming each lane, flow
/// "s"/"f" arrows, and an otherData block carrying dropped-span
/// accounting plus the hw-counter summary. Call at quiescence.
void write_chrome_json(std::ostream& out);
std::string to_chrome_json();

}  // namespace rri::trace

#if RRI_TRACE_ENABLED
#define RRI_TRACE_CONCAT_IMPL(a, b) a##b
#define RRI_TRACE_CONCAT(a, b) RRI_TRACE_CONCAT_IMPL(a, b)
/// Span over the rest of the block on this thread's lane. `name` must
/// be a string literal.
#define RRI_TRACE_SPAN(name) \
  ::rri::trace::ScopedSpan RRI_TRACE_CONCAT(rri_trace_span_, __LINE__)(name)
/// Route this thread's events to lane (pid, tid) for the block.
#define RRI_TRACE_LANE(pid, tid) \
  ::rri::trace::LaneScope RRI_TRACE_CONCAT(rri_trace_lane_, __LINE__)((pid), (tid))
#else
#define RRI_TRACE_SPAN(name) ((void)0)
#define RRI_TRACE_LANE(pid, tid) ((void)0)
#endif

#endif  // RRI_TRACE_TRACE_HPP
