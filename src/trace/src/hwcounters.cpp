#include "rri/trace/trace.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace rri::trace {

namespace {

inline constexpr int kBackendUnavailable = 0;
inline constexpr int kBackendPerfEvent = 1;

struct HwState {
  std::mutex mutex;
  bool started = false;
  int backend = kBackendUnavailable;
  int fd_cycles = -1;
  int fd_instructions = -1;
  int fd_task_clock = -1;
};

HwState& hw_state() {
  static HwState* instance = new HwState;
  return *instance;
}

bool hw_forced_off() {
  const char* v = std::getenv("RRI_HW");
  return v != nullptr &&
         (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0);
}

#if defined(__linux__)
int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Inherit into threads created after this point: start_hw() runs
  // before the first parallel region, so the OpenMP pool is counted.
  attr.inherit = 1;
  return static_cast<int>(
      syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0UL));
}

double read_counter(int fd) {
  if (fd < 0) {
    return 0.0;
  }
  std::uint64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) {
    return 0.0;
  }
  return static_cast<double>(value);
}
#endif  // __linux__

}  // namespace

const char* hw_backend_name(int backend) noexcept {
  return backend == kBackendPerfEvent ? "perf_event" : "unavailable";
}

void start_hw() noexcept {
  HwState& hw = hw_state();
  const std::lock_guard<std::mutex> lock(hw.mutex);
  if (hw.started) {
    return;
  }
  hw.started = true;
  if (hw_forced_off()) {
    return;
  }
#if defined(__linux__)
  // Cycles + instructions must both open for the backend to count as
  // available (IPC needs the pair); task_clock is best-effort gravy.
  // Typical failure here is perf_event_paranoid >= 2 inside containers,
  // which is exactly the graceful-degradation path.
  const int fd_cyc =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  const int fd_ins =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  if (fd_cyc < 0 || fd_ins < 0) {
    if (fd_cyc >= 0) {
      close(fd_cyc);
    }
    if (fd_ins >= 0) {
      close(fd_ins);
    }
    return;
  }
  hw.fd_cycles = fd_cyc;
  hw.fd_instructions = fd_ins;
  hw.fd_task_clock =
      open_counter(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK);
  hw.backend = kBackendPerfEvent;
#endif
}

HwSummary read_hw() noexcept {
  HwState& hw = hw_state();
  const std::lock_guard<std::mutex> lock(hw.mutex);
  HwSummary out;
  out.backend = hw.backend;
#if defined(__linux__)
  if (hw.backend == kBackendPerfEvent) {
    out.cycles = read_counter(hw.fd_cycles);
    out.instructions = read_counter(hw.fd_instructions);
    out.task_clock_ns = read_counter(hw.fd_task_clock);
  }
#endif
  return out;
}

}  // namespace rri::trace
