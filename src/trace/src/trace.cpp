#include "rri/trace/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace rri::trace {

namespace {

std::atomic<bool> g_enabled{false};

/// Trace epoch: all timestamps are nanoseconds since this point, so
/// every serialized ts is non-negative by construction.
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - g_epoch)
      .count();
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  return end != text ? static_cast<std::size_t>(v) : fallback;
}

std::atomic<std::size_t> g_default_capacity{
    env_size("RRI_TRACE_CAPACITY", 65536)};

/// Spans shorter than this are counted (filtered) but not stored —
/// the knob that keeps deep traces of the O(M^3) kernel loops from
/// drowning the ring in sub-microsecond slivers.
const std::int64_t g_min_span_ns =
    static_cast<std::int64_t>(env_size("RRI_TRACE_MIN_US", 0)) * 1000;

std::atomic<std::uint64_t> g_flow_ids{0};

enum class Kind : std::uint8_t { kSpan, kInstant, kFlowOut, kFlowIn };

struct Event {
  const char* name = nullptr;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint64_t flow_id = 0;
  Lane lane;
  Kind kind = Kind::kSpan;
};

/// One open (not yet closed) span on a thread's stack.
struct OpenSpan {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  Lane lane;
};

inline constexpr int kMaxDepth = 64;

/// Single-writer event ring (the owning thread); readers only touch it
/// at quiescence (write_chrome_json / stats / reset).
struct ThreadBuffer {
  explicit ThreadBuffer(int tid, std::size_t cap)
      : reg_tid(tid), ring(cap == 0 ? 1 : cap) {}

  void push(const Event& e) noexcept {
    if (count < ring.size()) {
      ring[(head + count) % ring.size()] = e;
      ++count;
    } else {
      ring[head] = e;  // drop-oldest
      head = (head + 1) % ring.size();
      ++dropped;
    }
  }

  int reg_tid;
  std::vector<Event> ring;
  std::size_t head = 0;
  std::size_t count = 0;
  std::size_t dropped = 0;
  std::size_t filtered = 0;
  OpenSpan stack[kMaxDepth];
  int depth = 0;
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
};

BufferRegistry& registry() {
  // Leaked on purpose (same reasoning as obs::Registry): exit hooks
  // serialize after static destruction would otherwise have run.
  static BufferRegistry* instance = new BufferRegistry;
  return *instance;
}

/// Thread-local state: the owned ring plus the lane override. The
/// shared_ptr keeps a finished thread's events alive in the registry
/// until serialization.
struct ThreadState {
  std::shared_ptr<ThreadBuffer> buffer;
  Lane lane;

  ThreadState() {
    BufferRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    buffer = std::make_shared<ThreadBuffer>(
        reg.next_tid++, g_default_capacity.load(std::memory_order_relaxed));
    reg.buffers.push_back(buffer);
    lane = Lane{kProcMain, buffer->reg_tid};
  }
};

ThreadState& state() {
  thread_local ThreadState s;
  return s;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

Lane current_lane() noexcept { return state().lane; }

void set_default_capacity(std::size_t spans) noexcept {
  g_default_capacity.store(spans == 0 ? 1 : spans,
                           std::memory_order_relaxed);
}

std::size_t default_capacity() noexcept {
  return g_default_capacity.load(std::memory_order_relaxed);
}

void begin_span(const char* name) noexcept {
  ThreadState& s = state();
  ThreadBuffer& buf = *s.buffer;
  if (buf.depth >= kMaxDepth) {
    ++buf.depth;  // too deep: count the level so end_span stays paired
    return;
  }
  buf.stack[buf.depth++] = OpenSpan{name, now_ns(), s.lane};
}

void end_span() noexcept {
  ThreadBuffer& buf = *state().buffer;
  if (buf.depth == 0) {
    return;  // unmatched end (e.g. tracing enabled mid-scope)
  }
  if (buf.depth > kMaxDepth) {
    --buf.depth;  // closing a level that was too deep to record
    return;
  }
  const OpenSpan open = buf.stack[--buf.depth];
  const std::int64_t dur = now_ns() - open.start_ns;
  if (dur < g_min_span_ns) {
    ++buf.filtered;
    return;
  }
  Event e;
  e.name = open.name;
  e.ts_ns = open.start_ns;
  e.dur_ns = dur;
  e.lane = open.lane;
  e.kind = Kind::kSpan;
  buf.push(e);
}

void instant(const char* name) noexcept {
  if (!enabled()) {
    return;
  }
  ThreadState& s = state();
  Event e;
  e.name = name;
  e.ts_ns = now_ns();
  e.lane = s.lane;
  e.kind = Kind::kInstant;
  s.buffer->push(e);
}

std::uint64_t next_flow_id() noexcept {
  return g_flow_ids.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace {
void record_flow(const char* name, std::uint64_t id, Kind kind) noexcept {
  if (!enabled()) {
    return;
  }
  ThreadState& s = state();
  Event e;
  e.name = name;
  e.ts_ns = now_ns();
  e.flow_id = id;
  e.lane = s.lane;
  e.kind = kind;
  s.buffer->push(e);
}
}  // namespace

void flow_out(const char* name, std::uint64_t id) noexcept {
  record_flow(name, id, Kind::kFlowOut);
}

void flow_in(const char* name, std::uint64_t id) noexcept {
  record_flow(name, id, Kind::kFlowIn);
}

LaneScope::LaneScope(int pid, int tid) noexcept : saved_(state().lane) {
  state().lane = Lane{pid, tid};
}

LaneScope::~LaneScope() { state().lane = saved_; }

TraceStats stats() {
  TraceStats out;
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    out.recorded += buf->count;
    out.dropped += buf->dropped;
    out.filtered += buf->filtered;
  }
  return out;
}

void reset() {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    buf->head = 0;
    buf->count = 0;
    buf->dropped = 0;
    buf->filtered = 0;
    buf->depth = 0;
  }
}

// ------------------------------------------------------ serialization

namespace {

/// Minimal JSON string escaping (span names are C identifiers in
/// practice, but never trust an invariant a compiler cannot see).
void write_escaped(std::ostream& out, const char* text) {
  out << '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_us(std::ostream& out, std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out << buf;
}

const char* process_name(int pid) {
  switch (pid) {
    case kProcMain: return "main + OpenMP threads";
    case kProcRanks: return "mpisim ranks";
    case kProcServe: return "serve workers";
  }
  return "other";
}

void write_thread_name(std::ostream& out, Lane lane) {
  char buf[48];
  switch (lane.pid) {
    case kProcRanks:
      std::snprintf(buf, sizeof(buf), "rank-%d", lane.tid);
      break;
    case kProcServe:
      std::snprintf(buf, sizeof(buf), "worker-%d", lane.tid);
      break;
    default:
      if (lane.tid == 0) {
        std::snprintf(buf, sizeof(buf), "main");
      } else {
        std::snprintf(buf, sizeof(buf), "thread-%d", lane.tid);
      }
  }
  out << '"' << buf << '"';
}

void write_event(std::ostream& out, const Event& e) {
  out << "{\"name\":";
  write_escaped(out, e.name);
  switch (e.kind) {
    case Kind::kSpan:
      out << ",\"ph\":\"X\",\"cat\":\"span\",\"dur\":";
      write_us(out, e.dur_ns);
      break;
    case Kind::kInstant:
      out << ",\"ph\":\"i\",\"cat\":\"mark\",\"s\":\"t\"";
      break;
    case Kind::kFlowOut:
      out << ",\"ph\":\"s\",\"cat\":\"flow\",\"id\":" << e.flow_id;
      break;
    case Kind::kFlowIn:
      out << ",\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\",\"id\":"
          << e.flow_id;
      break;
  }
  out << ",\"pid\":" << e.lane.pid << ",\"tid\":" << e.lane.tid
      << ",\"ts\":";
  write_us(out, e.ts_ns);
  out << "}";
}

}  // namespace

void write_chrome_json(std::ostream& out) {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);

  // Lanes observed across every buffer (a thread can have recorded on
  // several lanes via LaneScope), for the metadata naming pass.
  std::vector<Lane> lanes;
  std::vector<int> pids;
  const auto note_lane = [&](Lane lane) {
    for (const Lane& seen : lanes) {
      if (seen.pid == lane.pid && seen.tid == lane.tid) {
        return;
      }
    }
    lanes.push_back(lane);
    for (const int pid : pids) {
      if (pid == lane.pid) {
        return;
      }
    }
    pids.push_back(lane.pid);
  };
  std::size_t dropped = 0;
  std::size_t filtered = 0;
  for (const auto& buf : reg.buffers) {
    dropped += buf->dropped;
    filtered += buf->filtered;
    for (std::size_t k = 0; k < buf->count; ++k) {
      note_lane(buf->ring[(buf->head + k) % buf->ring.size()].lane);
    }
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) {
      out << ",\n";
    }
    first = false;
  };
  for (const int pid : pids) {
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << process_name(pid)
        << "\"}}";
    sep();
    out << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"sort_index\":" << pid << "}}";
  }
  for (const Lane& lane : lanes) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << lane.pid
        << ",\"tid\":" << lane.tid << ",\"args\":{\"name\":";
    write_thread_name(out, lane);
    out << "}}";
  }
  for (const auto& buf : reg.buffers) {
    for (std::size_t k = 0; k < buf->count; ++k) {
      sep();
      write_event(out, buf->ring[(buf->head + k) % buf->ring.size()]);
    }
  }
  out << "],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";

  const HwSummary hw = read_hw();
  out << "\"hw_backend\":\"" << hw_backend_name(hw.backend) << "\"";
  if (hw.valid()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"hw_cycles\":%.0f,"
                  "\"hw_instructions\":%.0f,\"hw_ipc\":%.3f",
                  hw.cycles, hw.instructions, hw.ipc());
    out << buf;
  }
  out << ",\"dropped_spans\":" << dropped
      << ",\"filtered_spans\":" << filtered << ",\"clock\":\"steady\"}}"
      << '\n';
}

std::string to_chrome_json() {
  std::ostringstream ss;
  write_chrome_json(ss);
  return ss.str();
}

}  // namespace rri::trace
