#ifndef RRI_ALPHA_CODEGEN_HPP
#define RRI_ALPHA_CODEGEN_HPP

/// \file codegen.hpp
/// C++ code generation from alphabets programs — the generateWriteC half
/// of the AlphaZ workflow ("sequential in nature and useful to check the
/// correctness of the program"). The emitted translation unit computes
/// output cells by memoized recursion, mirroring the in-process
/// evaluator; tests compile the generated code with the host compiler
/// and check it reproduces the evaluator's results exactly.

#include <string>

#include "rri/alpha/ast.hpp"

namespace rri::alpha {

struct CodegenOptions {
  /// Namespace the generated functions live in.
  std::string namespace_name = "alpha_generated";
};

/// Generate a self-contained C++17 translation unit. Interface of the
/// generated code, for program P with parameters p1..pk:
///
///   namespace <ns> {
///   struct Context {
///     long long p1, ..., pk;                     // parameter values
///     double (*input)(const char* var,
///                     const long long* idx, int arity);
///     long long reduce_bound;                    // enumeration box
///     ...memo tables...
///   };
///   double value_<Var>(Context&, long long i, ...);  // one per computed var
///   }
///
/// Reductions enumerate [-reduce_bound, reduce_bound]^k under their
/// domain constraints, exactly like the evaluator; callers set
/// reduce_bound >= max parameter + 2.
std::string generate_cpp(const Program& program,
                         const CodegenOptions& options = {});

}  // namespace rri::alpha

#endif  // RRI_ALPHA_CODEGEN_HPP
