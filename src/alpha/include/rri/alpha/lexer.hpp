#ifndef RRI_ALPHA_LEXER_HPP
#define RRI_ALPHA_LEXER_HPP

/// \file lexer.hpp
/// Tokenizer for the "alphabets" equational mini-language — the system-
/// definition half of AlphaZ that the paper programs BPMax in (its
/// Algorithm 1 is a matrix-multiplication system definition). This repo
/// implements enough of the language to express systems of affine
/// recurrence equations with reductions, extract their dependences, and
/// evaluate them; see parser.hpp for the grammar.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rri::alpha {

/// Thrown on any lexical or syntactic error; carries line/column.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, int line, int column)
      : std::runtime_error("alpha:" + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

enum class TokenKind {
  kIdent,     ///< identifiers and keywords (keyword-ness decided in parser)
  kNumber,    ///< integer literal
  kLBrace,    ///< {
  kRBrace,    ///< }
  kLBracket,  ///< [
  kRBracket,  ///< ]
  kLParen,    ///< (
  kRParen,    ///< )
  kComma,     ///< ,
  kSemi,      ///< ;
  kPipe,      ///< |
  kPlus,      ///< +
  kMinus,     ///< -
  kStar,      ///< *
  kEq,        ///< =
  kEqEq,      ///< ==
  kLe,        ///< <=
  kLt,        ///< <
  kGe,        ///< >=
  kGt,        ///< >
  kAndAnd,    ///< &&
  kEnd,       ///< end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        ///< identifier text or number literal
  std::int64_t value = 0;  ///< numeric value for kNumber
  int line = 0;
  int column = 0;
};

/// Tokenize the whole input. Comments run from "//" to end of line.
std::vector<Token> tokenize(const std::string& source);

/// Printable token-kind name for diagnostics.
const char* token_kind_name(TokenKind kind) noexcept;

}  // namespace rri::alpha

#endif  // RRI_ALPHA_LEXER_HPP
