#ifndef RRI_ALPHA_AST_HPP
#define RRI_ALPHA_AST_HPP

/// \file ast.hpp
/// Abstract syntax of the alphabets mini-language: a system of affine
/// recurrence equations over polyhedral domains (the paper's Algorithm 1
/// is the canonical example). The representation reuses the polyhedral
/// vocabulary of rri::poly — domains are ConstraintSystems, array
/// accesses are vectors of AffineExprs — so dependence extraction and
/// schedule checking plug straight into the legality machinery.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rri/poly/polyhedron.hpp"

namespace rri::alpha {

enum class VarKind { kParameter, kInput, kOutput, kLocal };

/// One declared array (or the implicit parameter "array" of rank 0).
struct VarDecl {
  std::string name;
  VarKind kind = VarKind::kInput;
  std::vector<std::string> index_names;  ///< e.g. {"i", "j"}
  /// Domain over (parameters..., index_names...): every valid cell.
  /// For parameters this is the parameter-domain constraint system.
  poly::ConstraintSystem domain{poly::Space{}};
};

enum class ReduceOp { kSum, kMax, kMin, kProduct };

const char* reduce_op_name(ReduceOp op) noexcept;

/// Expression tree. Affine index expressions inside VarRef are relative
/// to the *context space* of the enclosing equation: (parameters...,
/// lhs indices..., enclosing reduction indices...), innermost last.
struct Expr {
  enum class Kind { kConst, kVarRef, kBinary, kReduce };
  enum class BinOp { kAdd, kSub, kMul, kMax, kMin };

  Kind kind = Kind::kConst;

  // kConst
  double value = 0.0;

  // kVarRef
  std::string var;
  std::vector<poly::AffineExpr> indices;  ///< over the context space

  // kBinary
  BinOp op = BinOp::kAdd;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  // kReduce
  ReduceOp reduce_op = ReduceOp::kSum;
  std::vector<std::string> reduce_indices;
  /// Constraints bounding the reduction indices, over the body's context
  /// space (parameters, lhs indices, outer reduce indices, own indices).
  poly::ConstraintSystem reduce_domain{poly::Space{}};
  std::unique_ptr<Expr> body;
};

/// One equation: lhs_var[lhs_indices...] = rhs.
struct Equation {
  std::string lhs_var;
  std::vector<std::string> lhs_indices;
  std::unique_ptr<Expr> rhs;
  /// Context space of the RHS's top level: (params..., lhs_indices...).
  poly::Space context{std::vector<std::string>{}};
};

/// A whole system definition.
struct Program {
  std::string name;
  std::vector<std::string> parameters;
  poly::ConstraintSystem parameter_domain{poly::Space{}};
  std::vector<VarDecl> declarations;   ///< in declaration order
  std::vector<Equation> equations;

  const VarDecl* find_var(const std::string& var_name) const {
    for (const VarDecl& d : declarations) {
      if (d.name == var_name) {
        return &d;
      }
    }
    return nullptr;
  }
};

/// Render the program back to (normalized) source text; parses back to
/// an equivalent program (round-trip tested).
std::string to_source(const Program& program);

}  // namespace rri::alpha

#endif  // RRI_ALPHA_AST_HPP
