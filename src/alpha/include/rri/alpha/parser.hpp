#ifndef RRI_ALPHA_PARSER_HPP
#define RRI_ALPHA_PARSER_HPP

/// \file parser.hpp
/// Recursive-descent parser for the alphabets mini-language.
///
/// Grammar (EBNF; '//' comments; keywords are contextual identifiers):
///
///   program    := 'affine' IDENT domain
///                 { ('input' | 'output' | 'local') { decl } }
///                 'let' { equation }
///   decl       := ('float' | 'int') IDENT domain ';'
///   domain     := '{' ident-list '|' constraints '}'
///   constraints:= chain { '&&' chain }
///   chain      := affine { ('<=' | '<' | '>=' | '>' | '==') affine }
///   equation   := IDENT '[' ident-list ']' '=' expr ';'
///   expr       := addend { ('+' | '-') addend }
///   addend     := factor { '*' factor }
///   factor     := NUMBER
///               | 'max' '(' expr ',' expr ')' | 'min' '(' expr ',' expr ')'
///               | 'reduce' '(' reduce-op ',' '[' ident-list
///                     [ '|' constraints ] ']' ',' expr ')'
///               | IDENT '[' affine-list ']'          // array access
///               | IDENT                              // parameter/index
///               | '(' expr ')'
///   reduce-op  := '+' | '*' | 'max' | 'min'
///   affine     := linear combination of in-scope indices, parameters
///                 and integer literals using '+', '-', '*'
///
/// Affine positions (domains, access indices) reject non-affine forms
/// (e.g. i*j) with a SyntaxError; general expression positions allow
/// arbitrary products.

#include "rri/alpha/ast.hpp"
#include "rri/alpha/lexer.hpp"

namespace rri::alpha {

/// Parse a full system definition. Throws SyntaxError with line/column
/// on malformed input; performs name/arity validation (undeclared
/// variables, arity mismatches, equations for inputs) as it goes.
Program parse(const std::string& source);

}  // namespace rri::alpha

#endif  // RRI_ALPHA_PARSER_HPP
