#ifndef RRI_ALPHA_EVAL_HPP
#define RRI_ALPHA_EVAL_HPP

/// \file eval.hpp
/// Demand-driven evaluator for alphabets programs: the executable
/// semantics AlphaZ's generateWriteC provides ("sequential in nature and
/// useful to check the correctness of the program"). Output cells are
/// computed by memoized recursion on the equations; reductions enumerate
/// the integer points of their (bounded) domains.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "rri/alpha/ast.hpp"

namespace rri::alpha {

/// Thrown on evaluation failures: unbound inputs, out-of-domain reads,
/// unbounded reductions, or cyclic cell-level recursion.
class EvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Supplies input array values: (variable name, index point) -> value.
using InputProvider =
    std::function<double(const std::string&, const std::vector<std::int64_t>&)>;

class Evaluator {
 public:
  /// `parameters` binds every program parameter to a concrete value;
  /// missing bindings throw EvalError.
  Evaluator(const Program& program,
            std::map<std::string, std::int64_t> parameters,
            InputProvider inputs);

  /// Value of `var` at `point` (the variable's declared indices, without
  /// the parameter prefix). Memoized; checks the point lies in the
  /// variable's declared domain.
  double value(const std::string& var, std::vector<std::int64_t> point);

  /// Number of distinct cells computed so far (memo size), for tests.
  std::size_t cells_computed() const noexcept { return memo_.size(); }

 private:
  double eval_expr(const Expr& e, std::vector<std::int64_t>& context_point);
  double eval_reduce(const Expr& e, std::vector<std::int64_t>& context_point);
  double combine(ReduceOp op, double acc, double v) const;
  double identity(ReduceOp op) const;

  const Program& program_;
  std::map<std::string, std::int64_t> parameters_;
  std::vector<std::int64_t> param_values_;  ///< in program order
  InputProvider inputs_;
  std::map<std::pair<std::string, std::vector<std::int64_t>>, double> memo_;
  std::set<std::pair<std::string, std::vector<std::int64_t>>> in_progress_;
  std::int64_t reduce_bound_ = 0;  ///< box half-extent for reductions
};

}  // namespace rri::alpha

#endif  // RRI_ALPHA_EVAL_HPP
