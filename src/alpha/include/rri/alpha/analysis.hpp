#ifndef RRI_ALPHA_ANALYSIS_HPP
#define RRI_ALPHA_ANALYSIS_HPP

/// \file analysis.hpp
/// Static analyses over parsed alphabets programs: dependence extraction
/// (every array read of every equation becomes a poly::Dependence whose
/// legality can be checked against a user schedule, closing the
/// AlphaZ-style loop of "write the spec, pick a mapping, verify it"),
/// plus simple well-formedness queries.

#include "rri/alpha/ast.hpp"
#include "rri/poly/schedule.hpp"

namespace rri::alpha {

/// Options for dependence extraction.
struct DependenceOptions {
  /// Include reads of input variables (they impose no ordering between
  /// computed statements, but are useful for dataflow displays).
  bool include_input_reads = false;
};

/// Extract one Dependence per array read. The target statement of a read
/// inside equation `V[idx] = ...` is named V and has domain space
/// (parameters..., lhs indices..., enclosing reduction indices...); the
/// source statement is the read variable with its declared domain
/// space. The dependence domain combines the target variable's declared
/// domain with every enclosing reduction's constraints.
std::vector<poly::Dependence> extract_dependences(
    const Program& program, const DependenceOptions& options = {});

/// Statement domain space of an equation's deepest context is per-read;
/// this returns the *top-level* statement space of variable `var`'s
/// defining equation: (parameters..., lhs indices...).
poly::Space equation_space(const Program& program, const std::string& var);

/// Variables in dependence order (inputs first, then computed variables
/// ordered so each is preceded by everything its equation reads).
/// Throws std::runtime_error on cyclic variable-level dependences that
/// are not self-recurrences.
std::vector<std::string> topological_order(const Program& program);

}  // namespace rri::alpha

#endif  // RRI_ALPHA_ANALYSIS_HPP
