#include "rri/alpha/lexer.hpp"

#include <cctype>

namespace rri::alpha {

const char* token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t pos = 0;

  auto peek = [&](std::size_t ahead = 0) -> char {
    return pos + ahead < source.size() ? source[pos + ahead] : '\0';
  };
  auto advance = [&] {
    if (peek() == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++pos;
  };
  auto push = [&](TokenKind kind, std::string text, int start_col) {
    tokens.push_back(Token{kind, std::move(text), 0, line, start_col});
  };

  while (pos < source.size()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (pos < source.size() && peek() != '\n') {
        advance();
      }
      continue;
    }
    const int start_col = column;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        text.push_back(peek());
        advance();
      }
      push(TokenKind::kIdent, std::move(text), start_col);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(peek());
        advance();
      }
      Token t{TokenKind::kNumber, text, std::stoll(text), line, start_col};
      tokens.push_back(std::move(t));
      continue;
    }
    auto two = [&](char second, TokenKind long_kind, TokenKind short_kind) {
      if (peek(1) == second) {
        advance();
        advance();
        push(long_kind, {c, second}, start_col);
      } else {
        advance();
        push(short_kind, {c}, start_col);
      }
    };
    switch (c) {
      case '{': advance(); push(TokenKind::kLBrace, "{", start_col); break;
      case '}': advance(); push(TokenKind::kRBrace, "}", start_col); break;
      case '[': advance(); push(TokenKind::kLBracket, "[", start_col); break;
      case ']': advance(); push(TokenKind::kRBracket, "]", start_col); break;
      case '(': advance(); push(TokenKind::kLParen, "(", start_col); break;
      case ')': advance(); push(TokenKind::kRParen, ")", start_col); break;
      case ',': advance(); push(TokenKind::kComma, ",", start_col); break;
      case ';': advance(); push(TokenKind::kSemi, ";", start_col); break;
      case '|': advance(); push(TokenKind::kPipe, "|", start_col); break;
      case '+': advance(); push(TokenKind::kPlus, "+", start_col); break;
      case '-': advance(); push(TokenKind::kMinus, "-", start_col); break;
      case '*': advance(); push(TokenKind::kStar, "*", start_col); break;
      case '=': two('=', TokenKind::kEqEq, TokenKind::kEq); break;
      case '<': two('=', TokenKind::kLe, TokenKind::kLt); break;
      case '>': two('=', TokenKind::kGe, TokenKind::kGt); break;
      case '&':
        if (peek(1) != '&') {
          throw SyntaxError("stray '&'", line, start_col);
        }
        advance();
        advance();
        push(TokenKind::kAndAnd, "&&", start_col);
        break;
      default:
        throw SyntaxError(std::string("unexpected character '") + c + "'",
                          line, start_col);
    }
  }
  tokens.push_back(Token{TokenKind::kEnd, "", 0, line, column});
  return tokens;
}

}  // namespace rri::alpha
