#include "rri/alpha/parser.hpp"

#include <algorithm>

namespace rri::alpha {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& source) : tokens_(tokenize(source)) {}

  Program parse_program() {
    expect_keyword("affine");
    program_.name = expect(TokenKind::kIdent).text;
    // Parameter domain: '{' params '|' constraints '}'.
    parse_param_domain();

    bool seen_let = false;
    while (!seen_let) {
      const Token& t = peek();
      if (t.kind != TokenKind::kIdent) {
        fail("expected a section keyword (input/output/local/let)", t);
      }
      if (t.text == "input" || t.text == "output" || t.text == "local") {
        advance();
        const VarKind kind = t.text == "input"    ? VarKind::kInput
                             : t.text == "output" ? VarKind::kOutput
                                                  : VarKind::kLocal;
        // Declarations run until the next section keyword.
        while (peek().kind == TokenKind::kIdent &&
               (peek().text == "float" || peek().text == "int")) {
          parse_declaration(kind);
        }
      } else if (t.text == "let") {
        advance();
        seen_let = true;
      } else {
        fail("unknown section '" + t.text + "'", t);
      }
    }
    while (peek().kind != TokenKind::kEnd) {
      parse_equation();
    }
    validate_program();
    return std::move(program_);
  }

 private:
  // ------------------------------------------------------------ plumbing

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  [[noreturn]] void fail(const std::string& message, const Token& at) const {
    throw SyntaxError(message, at.line, at.column);
  }

  const Token& expect(TokenKind kind) {
    const Token& t = peek();
    if (t.kind != kind) {
      fail(std::string("expected ") + token_kind_name(kind) + ", found " +
               token_kind_name(t.kind) +
               (t.text.empty() ? "" : " '" + t.text + "'"),
           t);
    }
    return advance();
  }

  void expect_keyword(const std::string& word) {
    const Token& t = peek();
    if (t.kind != TokenKind::kIdent || t.text != word) {
      fail("expected keyword '" + word + "'", t);
    }
    advance();
  }

  bool accept(TokenKind kind) {
    if (peek().kind == kind) {
      advance();
      return true;
    }
    return false;
  }

  // ------------------------------------------------------ affine pieces

  std::vector<std::string> parse_ident_list() {
    std::vector<std::string> names;
    names.push_back(expect(TokenKind::kIdent).text);
    while (accept(TokenKind::kComma)) {
      names.push_back(expect(TokenKind::kIdent).text);
    }
    return names;
  }

  /// affine := term { ('+'|'-') term }
  poly::AffineExpr parse_affine(const poly::Space& space) {
    poly::AffineExpr e = parse_affine_term(space);
    while (true) {
      if (accept(TokenKind::kPlus)) {
        e = e + parse_affine_term(space);
      } else if (accept(TokenKind::kMinus)) {
        e = e - parse_affine_term(space);
      } else {
        return e;
      }
    }
  }

  /// term := primary { '*' primary } where at most one side is symbolic
  poly::AffineExpr parse_affine_term(const poly::Space& space) {
    poly::AffineExpr e = parse_affine_primary(space);
    while (peek().kind == TokenKind::kStar) {
      const Token& star = peek();
      advance();
      const poly::AffineExpr rhs = parse_affine_primary(space);
      if (e.is_constant()) {
        e = rhs * e.constant_term();
      } else if (rhs.is_constant()) {
        e = e * rhs.constant_term();
      } else {
        fail("non-affine product of two symbolic expressions", star);
      }
    }
    return e;
  }

  poly::AffineExpr parse_affine_primary(const poly::Space& space) {
    const Token& t = peek();
    if (accept(TokenKind::kMinus)) {
      return -parse_affine_primary(space);
    }
    if (t.kind == TokenKind::kNumber) {
      advance();
      return poly::AffineExpr::constant(space.size(), t.value);
    }
    if (t.kind == TokenKind::kIdent) {
      advance();
      try {
        return poly::AffineExpr::variable(space.size(), space.index(t.text));
      } catch (const std::out_of_range&) {
        fail("unknown index or parameter '" + t.text + "'", t);
      }
    }
    if (accept(TokenKind::kLParen)) {
      poly::AffineExpr e = parse_affine(space);
      expect(TokenKind::kRParen);
      return e;
    }
    fail("expected an affine expression", t);
  }

  /// constraints := chain { '&&' chain }; chain := affine { relop affine }
  void parse_constraints(const poly::Space& space,
                         poly::ConstraintSystem& out) {
    parse_chain(space, out);
    while (accept(TokenKind::kAndAnd)) {
      parse_chain(space, out);
    }
  }

  void parse_chain(const poly::Space& space, poly::ConstraintSystem& out) {
    poly::AffineExpr prev = parse_affine(space);
    bool any = false;
    while (true) {
      const TokenKind k = peek().kind;
      if (k != TokenKind::kLe && k != TokenKind::kLt && k != TokenKind::kGe &&
          k != TokenKind::kGt && k != TokenKind::kEqEq) {
        break;
      }
      advance();
      poly::AffineExpr next = parse_affine(space);
      switch (k) {
        case TokenKind::kLe: out.add_le(prev, next); break;
        case TokenKind::kLt: out.add_lt(prev, next); break;
        case TokenKind::kGe: out.add_ge(prev, next); break;
        case TokenKind::kGt: out.add_lt(next, prev); break;
        default: out.add_eq(prev, next); break;
      }
      prev = std::move(next);
      any = true;
    }
    if (!any) {
      fail("expected a relational operator in constraint", peek());
    }
  }

  /// '{' idents '|' constraints '}' over (parameters..., idents...).
  void parse_domain(std::vector<std::string>* index_names,
                    poly::ConstraintSystem* domain) {
    expect(TokenKind::kLBrace);
    *index_names = parse_ident_list();
    std::vector<std::string> dims = program_.parameters;
    dims.insert(dims.end(), index_names->begin(), index_names->end());
    const poly::Space space{dims};
    *domain = poly::ConstraintSystem(space);
    if (accept(TokenKind::kPipe)) {
      parse_constraints(space, *domain);
    }
    expect(TokenKind::kRBrace);
  }

  void parse_param_domain() {
    expect(TokenKind::kLBrace);
    program_.parameters = parse_ident_list();
    const poly::Space space{program_.parameters};
    program_.parameter_domain = poly::ConstraintSystem(space);
    if (accept(TokenKind::kPipe)) {
      // Parameter constraints commonly use the tuple form (M,N) > 0;
      // accept a parenthesized ident tuple compared against one affine.
      if (peek().kind == TokenKind::kLParen &&
          peek(1).kind == TokenKind::kIdent &&
          (peek(2).kind == TokenKind::kComma)) {
        parse_tuple_constraint(space);
      } else {
        parse_constraints(space, program_.parameter_domain);
      }
    }
    expect(TokenKind::kRBrace);
  }

  /// (p, q, r) > expr — element-wise comparison sugar.
  void parse_tuple_constraint(const poly::Space& space) {
    expect(TokenKind::kLParen);
    const std::vector<std::string> names = parse_ident_list();
    expect(TokenKind::kRParen);
    const TokenKind rel = peek().kind;
    if (rel != TokenKind::kGt && rel != TokenKind::kGe &&
        rel != TokenKind::kLt && rel != TokenKind::kLe) {
      fail("expected a relational operator after parameter tuple", peek());
    }
    advance();
    const poly::AffineExpr bound = parse_affine(space);
    for (const std::string& name : names) {
      poly::AffineExpr v;
      try {
        v = poly::AffineExpr::variable(space.size(), space.index(name));
      } catch (const std::out_of_range&) {
        fail("unknown parameter '" + name + "' in tuple constraint", peek());
      }
      switch (rel) {
        case TokenKind::kGt: program_.parameter_domain.add_lt(bound, v); break;
        case TokenKind::kGe: program_.parameter_domain.add_ge(v, bound); break;
        case TokenKind::kLt: program_.parameter_domain.add_lt(v, bound); break;
        default: program_.parameter_domain.add_le(v, bound); break;
      }
    }
  }

  // -------------------------------------------------------- declarations

  void parse_declaration(VarKind kind) {
    advance();  // 'float' | 'int' (type currently informational)
    VarDecl decl;
    decl.kind = kind;
    decl.name = expect(TokenKind::kIdent).text;
    parse_domain(&decl.index_names, &decl.domain);
    expect(TokenKind::kSemi);
    if (program_.find_var(decl.name) != nullptr) {
      fail("variable '" + decl.name + "' declared twice", peek());
    }
    program_.declarations.push_back(std::move(decl));
  }

  // ----------------------------------------------------------- equations

  void parse_equation() {
    Equation eq;
    const Token& name_tok = expect(TokenKind::kIdent);
    eq.lhs_var = name_tok.text;
    const VarDecl* decl = program_.find_var(eq.lhs_var);
    if (decl == nullptr) {
      fail("equation for undeclared variable '" + eq.lhs_var + "'", name_tok);
    }
    if (decl->kind == VarKind::kInput || decl->kind == VarKind::kParameter) {
      fail("equation target '" + eq.lhs_var + "' is an input", name_tok);
    }
    expect(TokenKind::kLBracket);
    eq.lhs_indices = parse_ident_list();
    expect(TokenKind::kRBracket);
    if (eq.lhs_indices.size() != decl->index_names.size()) {
      fail("equation for '" + eq.lhs_var + "' has " +
               std::to_string(eq.lhs_indices.size()) + " indices; declared " +
               std::to_string(decl->index_names.size()),
           name_tok);
    }
    std::vector<std::string> dims = program_.parameters;
    dims.insert(dims.end(), eq.lhs_indices.begin(), eq.lhs_indices.end());
    eq.context = poly::Space{dims};
    expect(TokenKind::kEq);
    eq.rhs = parse_expr(eq.context);
    expect(TokenKind::kSemi);
    program_.equations.push_back(std::move(eq));
  }

  std::unique_ptr<Expr> parse_expr(const poly::Space& context) {
    auto e = parse_addend(context);
    while (true) {
      if (accept(TokenKind::kPlus)) {
        e = make_binary(Expr::BinOp::kAdd, std::move(e),
                        parse_addend(context));
      } else if (accept(TokenKind::kMinus)) {
        e = make_binary(Expr::BinOp::kSub, std::move(e),
                        parse_addend(context));
      } else {
        return e;
      }
    }
  }

  std::unique_ptr<Expr> parse_addend(const poly::Space& context) {
    auto e = parse_factor(context);
    while (accept(TokenKind::kStar)) {
      e = make_binary(Expr::BinOp::kMul, std::move(e), parse_factor(context));
    }
    return e;
  }

  static std::unique_ptr<Expr> make_binary(Expr::BinOp op,
                                           std::unique_ptr<Expr> lhs,
                                           std::unique_ptr<Expr> rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::unique_ptr<Expr> parse_factor(const poly::Space& context) {
    const Token& t = peek();
    if (t.kind == TokenKind::kNumber) {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kConst;
      e->value = static_cast<double>(t.value);
      return e;
    }
    if (accept(TokenKind::kMinus)) {
      // Unary minus: 0 - factor.
      auto zero = std::make_unique<Expr>();
      zero->kind = Expr::Kind::kConst;
      return make_binary(Expr::BinOp::kSub, std::move(zero),
                         parse_factor(context));
    }
    if (accept(TokenKind::kLParen)) {
      auto e = parse_expr(context);
      expect(TokenKind::kRParen);
      return e;
    }
    if (t.kind != TokenKind::kIdent) {
      fail("expected an expression", t);
    }
    if (t.text == "max" || t.text == "min") {
      advance();
      expect(TokenKind::kLParen);
      auto lhs = parse_expr(context);
      expect(TokenKind::kComma);
      auto rhs = parse_expr(context);
      expect(TokenKind::kRParen);
      return make_binary(t.text == "max" ? Expr::BinOp::kMax
                                         : Expr::BinOp::kMin,
                         std::move(lhs), std::move(rhs));
    }
    if (t.text == "reduce") {
      return parse_reduce(context);
    }
    // Array access.
    advance();
    const VarDecl* decl = program_.find_var(t.text);
    if (decl == nullptr) {
      fail("reference to undeclared variable '" + t.text + "'", t);
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kVarRef;
    e->var = t.text;
    expect(TokenKind::kLBracket);
    e->indices.push_back(parse_affine(context));
    while (accept(TokenKind::kComma)) {
      e->indices.push_back(parse_affine(context));
    }
    expect(TokenKind::kRBracket);
    if (e->indices.size() != decl->index_names.size()) {
      fail("access to '" + t.text + "' has " +
               std::to_string(e->indices.size()) + " indices; declared " +
               std::to_string(decl->index_names.size()),
           t);
    }
    return e;
  }

  std::unique_ptr<Expr> parse_reduce(const poly::Space& context) {
    expect_keyword("reduce");
    expect(TokenKind::kLParen);
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kReduce;
    const Token& op = peek();
    if (accept(TokenKind::kPlus)) {
      e->reduce_op = ReduceOp::kSum;
    } else if (accept(TokenKind::kStar)) {
      e->reduce_op = ReduceOp::kProduct;
    } else if (op.kind == TokenKind::kIdent &&
               (op.text == "max" || op.text == "min")) {
      advance();
      e->reduce_op = op.text == "max" ? ReduceOp::kMax : ReduceOp::kMin;
    } else {
      fail("expected a reduction operator (+, *, max, min)", op);
    }
    expect(TokenKind::kComma);
    expect(TokenKind::kLBracket);
    e->reduce_indices = parse_ident_list();
    // Body context: parent dims + the new reduction indices.
    std::vector<std::string> dims = context.names();
    dims.insert(dims.end(), e->reduce_indices.begin(),
                e->reduce_indices.end());
    const poly::Space body_space{dims};
    e->reduce_domain = poly::ConstraintSystem(body_space);
    if (accept(TokenKind::kPipe)) {
      parse_constraints(body_space, e->reduce_domain);
    }
    expect(TokenKind::kRBracket);
    expect(TokenKind::kComma);
    e->body = parse_expr(body_space);
    expect(TokenKind::kRParen);
    return e;
  }

  // ---------------------------------------------------------- validation

  void validate_program() {
    for (const VarDecl& decl : program_.declarations) {
      if (decl.kind == VarKind::kInput) {
        continue;
      }
      int defining = 0;
      for (const Equation& eq : program_.equations) {
        defining += (eq.lhs_var == decl.name) ? 1 : 0;
      }
      if (defining == 0) {
        throw SyntaxError("no equation defines '" + decl.name + "'", 0, 0);
      }
      if (defining > 1) {
        throw SyntaxError("multiple equations define '" + decl.name + "'", 0,
                          0);
      }
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Program program_;
};

}  // namespace

Program parse(const std::string& source) {
  return Parser(source).parse_program();
}

const char* reduce_op_name(ReduceOp op) noexcept {
  switch (op) {
    case ReduceOp::kSum: return "+";
    case ReduceOp::kMax: return "max";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kProduct: return "*";
  }
  return "?";
}

}  // namespace rri::alpha
