#include "rri/alpha/eval.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace rri::alpha {

Evaluator::Evaluator(const Program& program,
                     std::map<std::string, std::int64_t> parameters,
                     InputProvider inputs)
    : program_(program),
      parameters_(std::move(parameters)),
      inputs_(std::move(inputs)) {
  for (const std::string& p : program_.parameters) {
    const auto it = parameters_.find(p);
    if (it == parameters_.end()) {
      throw EvalError("parameter '" + p + "' is unbound");
    }
    param_values_.push_back(it->second);
    reduce_bound_ =
        std::max(reduce_bound_, std::abs(it->second) + 2);
  }
  reduce_bound_ = std::max<std::int64_t>(reduce_bound_, 4);
  if (!program_.parameter_domain.contains(param_values_)) {
    throw EvalError("parameter values violate the parameter domain");
  }
}

double Evaluator::value(const std::string& var,
                        std::vector<std::int64_t> point) {
  const VarDecl* decl = program_.find_var(var);
  if (decl == nullptr) {
    throw EvalError("unknown variable '" + var + "'");
  }
  if (point.size() != decl->index_names.size()) {
    throw EvalError("arity mismatch reading '" + var + "'");
  }
  std::vector<std::int64_t> full = param_values_;
  full.insert(full.end(), point.begin(), point.end());
  if (!decl->domain.contains(full)) {
    throw EvalError("read of '" + var + "' outside its declared domain");
  }
  if (decl->kind == VarKind::kInput) {
    return inputs_(var, point);
  }

  const auto key = std::make_pair(var, point);
  const auto hit = memo_.find(key);
  if (hit != memo_.end()) {
    return hit->second;
  }
  if (!in_progress_.insert(key).second) {
    throw EvalError("cyclic cell-level recursion evaluating '" + var + "'");
  }

  const Equation* eq = nullptr;
  for (const Equation& candidate : program_.equations) {
    if (candidate.lhs_var == var) {
      eq = &candidate;
      break;
    }
  }
  if (eq == nullptr) {
    throw EvalError("no equation defines '" + var + "'");
  }
  std::vector<std::int64_t> context_point = full;
  const double v = eval_expr(*eq->rhs, context_point);
  in_progress_.erase(key);
  memo_.emplace(key, v);
  return v;
}

double Evaluator::identity(ReduceOp op) const {
  switch (op) {
    case ReduceOp::kSum: return 0.0;
    case ReduceOp::kProduct: return 1.0;
    case ReduceOp::kMax: return -std::numeric_limits<double>::infinity();
    case ReduceOp::kMin: return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double Evaluator::combine(ReduceOp op, double acc, double v) const {
  switch (op) {
    case ReduceOp::kSum: return acc + v;
    case ReduceOp::kProduct: return acc * v;
    case ReduceOp::kMax: return std::max(acc, v);
    case ReduceOp::kMin: return std::min(acc, v);
  }
  return acc;
}

double Evaluator::eval_reduce(const Expr& e,
                              std::vector<std::int64_t>& context_point) {
  const std::size_t k = e.reduce_indices.size();
  const std::size_t base = context_point.size();
  context_point.resize(base + k, -reduce_bound_);

  double acc = identity(e.reduce_op);
  // Odometer over the reduction indices within [-bound, bound]^k; each
  // point satisfying the reduce domain contributes.
  while (true) {
    if (e.reduce_domain.contains(context_point)) {
      for (std::size_t d = 0; d < k; ++d) {
        const std::int64_t v = context_point[base + d];
        if (v == -reduce_bound_ || v == reduce_bound_) {
          context_point.resize(base);
          throw EvalError(
              "reduction domain reaches the enumeration bound; it is "
              "unbounded or the parameters are too large for the evaluator");
        }
      }
      acc = combine(e.reduce_op, acc, eval_expr(*e.body, context_point));
    }
    std::size_t d = 0;
    while (d < k) {
      if (++context_point[base + d] <= reduce_bound_) {
        break;
      }
      context_point[base + d] = -reduce_bound_;
      ++d;
    }
    if (d == k) {
      break;
    }
  }
  context_point.resize(base);
  return acc;
}

double Evaluator::eval_expr(const Expr& e,
                            std::vector<std::int64_t>& context_point) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      return e.value;
    case Expr::Kind::kBinary: {
      const double a = eval_expr(*e.lhs, context_point);
      const double b = eval_expr(*e.rhs, context_point);
      switch (e.op) {
        case Expr::BinOp::kAdd: return a + b;
        case Expr::BinOp::kSub: return a - b;
        case Expr::BinOp::kMul: return a * b;
        case Expr::BinOp::kMax: return std::max(a, b);
        case Expr::BinOp::kMin: return std::min(a, b);
      }
      return 0.0;
    }
    case Expr::Kind::kVarRef: {
      std::vector<std::int64_t> point;
      point.reserve(e.indices.size());
      for (const poly::AffineExpr& idx : e.indices) {
        point.push_back(idx.eval(context_point));
      }
      return value(e.var, std::move(point));
    }
    case Expr::Kind::kReduce:
      return eval_reduce(e, context_point);
  }
  return 0.0;
}

}  // namespace rri::alpha
