#include "rri/alpha/ast.hpp"

#include <sstream>

namespace rri::alpha {
namespace {

void print_constraints(std::ostream& out, const poly::ConstraintSystem& cs) {
  bool first = true;
  for (const poly::Constraint& c : cs.constraints()) {
    if (!first) {
      out << " && ";
    }
    first = false;
    out << c.expr.to_string(cs.space()) << (c.equality ? " == 0" : " >= 0");
  }
  if (first) {
    out << "0 >= 0";  // empty constraint list: trivially true
  }
}

void print_ident_list(std::ostream& out,
                      const std::vector<std::string>& names) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << (i ? "," : "") << names[i];
  }
}

void print_expr(std::ostream& out, const Expr& e, const poly::Space& context);

void print_binary(std::ostream& out, const Expr& e,
                  const poly::Space& context) {
  const char* infix = nullptr;
  switch (e.op) {
    case Expr::BinOp::kAdd: infix = " + "; break;
    case Expr::BinOp::kSub: infix = " - "; break;
    case Expr::BinOp::kMul: infix = " * "; break;
    case Expr::BinOp::kMax: infix = nullptr; break;
    case Expr::BinOp::kMin: infix = nullptr; break;
  }
  if (infix != nullptr) {
    out << "(";
    print_expr(out, *e.lhs, context);
    out << infix;
    print_expr(out, *e.rhs, context);
    out << ")";
  } else {
    out << (e.op == Expr::BinOp::kMax ? "max(" : "min(");
    print_expr(out, *e.lhs, context);
    out << ", ";
    print_expr(out, *e.rhs, context);
    out << ")";
  }
}

void print_expr(std::ostream& out, const Expr& e,
                const poly::Space& context) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      out << static_cast<std::int64_t>(e.value);
      return;
    case Expr::Kind::kVarRef: {
      out << e.var << "[";
      for (std::size_t i = 0; i < e.indices.size(); ++i) {
        out << (i ? "," : "") << e.indices[i].to_string(context);
      }
      out << "]";
      return;
    }
    case Expr::Kind::kBinary:
      print_binary(out, e, context);
      return;
    case Expr::Kind::kReduce: {
      out << "reduce(" << reduce_op_name(e.reduce_op) << ", [";
      print_ident_list(out, e.reduce_indices);
      out << " | ";
      print_constraints(out, e.reduce_domain);
      out << "], ";
      print_expr(out, *e.body, e.reduce_domain.space());
      out << ")";
      return;
    }
  }
}

}  // namespace

std::string to_source(const Program& program) {
  std::ostringstream out;
  out << "affine " << program.name << " {";
  print_ident_list(out, program.parameters);
  out << " | ";
  print_constraints(out, program.parameter_domain);
  out << "}\n";
  const char* section_names[] = {"", "input", "output", "local"};
  for (int section = 1; section <= 3; ++section) {
    bool any = false;
    for (const VarDecl& d : program.declarations) {
      if (static_cast<int>(d.kind) != section) {
        continue;
      }
      if (!any) {
        out << section_names[section] << "\n";
        any = true;
      }
      out << "  float " << d.name << " {";
      print_ident_list(out, d.index_names);
      out << " | ";
      print_constraints(out, d.domain);
      out << "};\n";
    }
  }
  out << "let\n";
  for (const Equation& eq : program.equations) {
    out << "  " << eq.lhs_var << "[";
    print_ident_list(out, eq.lhs_indices);
    out << "] = ";
    print_expr(out, *eq.rhs, eq.context);
    out << ";\n";
  }
  return out.str();
}

}  // namespace rri::alpha
