#include "rri/alpha/analysis.hpp"

#include <set>
#include <stdexcept>

namespace rri::alpha {
namespace {

/// Zero-extend an affine expression from a prefix space to a larger one.
poly::AffineExpr extend(const poly::AffineExpr& e, int new_dims) {
  poly::AffineExpr out(new_dims);
  for (int d = 0; d < e.dims(); ++d) {
    out.coeff(d) = e.coeff(d);
  }
  out.constant_term() = e.constant_term();
  return out;
}

/// Re-express constraints over a prefix space in `space` (zero-padding).
void extend_into(const poly::ConstraintSystem& from,
                 poly::ConstraintSystem& to) {
  for (const poly::Constraint& c : from.constraints()) {
    if (c.equality) {
      to.add_eq0(extend(c.expr, to.dims()));
    } else {
      to.add_ge0(extend(c.expr, to.dims()));
    }
  }
}

struct Walker {
  const Program& program;
  const DependenceOptions& options;
  std::vector<poly::Dependence>& out;

  /// Walk expression `e` whose context space is `context`; `enclosing`
  /// accumulates the reduce-domain constraints gathered on the way down
  /// (each over a prefix of `context`).
  void walk(const Equation& eq, const Expr& e, const poly::Space& context,
            const std::vector<const poly::ConstraintSystem*>& enclosing) {
    switch (e.kind) {
      case Expr::Kind::kConst:
        return;
      case Expr::Kind::kBinary:
        walk(eq, *e.lhs, context, enclosing);
        walk(eq, *e.rhs, context, enclosing);
        return;
      case Expr::Kind::kReduce: {
        auto nested = enclosing;
        nested.push_back(&e.reduce_domain);
        walk(eq, *e.body, e.reduce_domain.space(), nested);
        return;
      }
      case Expr::Kind::kVarRef:
        emit(eq, e, context, enclosing);
        return;
    }
  }

  void emit(const Equation& eq, const Expr& ref, const poly::Space& context,
            const std::vector<const poly::ConstraintSystem*>& enclosing) {
    const VarDecl* src = program.find_var(ref.var);
    const VarDecl* tgt = program.find_var(eq.lhs_var);
    if (src == nullptr || tgt == nullptr) {
      throw std::logic_error("dependence extraction on unvalidated program");
    }
    if (src->kind == VarKind::kInput && !options.include_input_reads) {
      return;
    }

    poly::ConstraintSystem domain(context);
    // Target cell must be a valid cell of the LHS variable: translate the
    // declared domain (over params + decl index names) to the context
    // (params + equation lhs names share positions with decl names).
    {
      const int params = static_cast<int>(program.parameters.size());
      std::vector<poly::AffineExpr> map;
      map.reserve(static_cast<std::size_t>(tgt->domain.dims()));
      for (int d = 0; d < params + static_cast<int>(tgt->index_names.size());
           ++d) {
        map.push_back(poly::AffineExpr::variable(context.size(), d));
      }
      for (const poly::Constraint& c : tgt->domain.constraints()) {
        const poly::AffineExpr translated = c.expr.substitute(map);
        if (c.equality) {
          domain.add_eq0(translated);
        } else {
          domain.add_ge0(translated);
        }
      }
    }
    // Parameter constraints.
    extend_into(program.parameter_domain, domain);
    // Enclosing reduction constraints.
    for (const poly::ConstraintSystem* cs : enclosing) {
      extend_into(*cs, domain);
    }

    // Source coordinates: parameters pass through, then the access.
    std::vector<poly::AffineExpr> src_coords;
    for (std::size_t p = 0; p < program.parameters.size(); ++p) {
      src_coords.push_back(
          poly::AffineExpr::variable(context.size(), static_cast<int>(p)));
    }
    for (const poly::AffineExpr& idx : ref.indices) {
      src_coords.push_back(extend(idx, context.size()));
    }

    // Target coordinates: parameters then the equation's lhs indices
    // (a prefix of the context immediately after the parameters).
    std::vector<poly::AffineExpr> tgt_coords;
    const int params = static_cast<int>(program.parameters.size());
    for (int d = 0; d < params + static_cast<int>(eq.lhs_indices.size());
         ++d) {
      tgt_coords.push_back(poly::AffineExpr::variable(context.size(), d));
    }

    poly::Dependence dep{
        eq.lhs_var + " reads " + ref.var, ref.var, eq.lhs_var,
        std::move(domain), std::move(src_coords), std::move(tgt_coords)};
    out.push_back(std::move(dep));
  }
};

}  // namespace

std::vector<poly::Dependence> extract_dependences(
    const Program& program, const DependenceOptions& options) {
  std::vector<poly::Dependence> deps;
  Walker walker{program, options, deps};
  for (const Equation& eq : program.equations) {
    walker.walk(eq, *eq.rhs, eq.context, {});
  }
  return deps;
}

poly::Space equation_space(const Program& program, const std::string& var) {
  for (const Equation& eq : program.equations) {
    if (eq.lhs_var == var) {
      return eq.context;
    }
  }
  throw std::out_of_range("no equation defines '" + var + "'");
}

std::vector<std::string> topological_order(const Program& program) {
  // Variable-level reads (ignoring self-recurrences, which are fine for
  // the memoized evaluator as long as cells do not cycle).
  std::map<std::string, std::set<std::string>> reads;
  const auto deps = extract_dependences(program, {.include_input_reads = true});
  for (const auto& d : deps) {
    if (d.src_stmt != d.tgt_stmt) {
      reads[d.tgt_stmt].insert(d.src_stmt);
    }
  }
  std::vector<std::string> order;
  std::set<std::string> done;
  for (const VarDecl& d : program.declarations) {
    if (d.kind == VarKind::kInput) {
      order.push_back(d.name);
      done.insert(d.name);
    }
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (const VarDecl& d : program.declarations) {
      if (done.count(d.name) != 0) {
        continue;
      }
      bool ready = true;
      for (const std::string& r : reads[d.name]) {
        if (done.count(r) == 0) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(d.name);
        done.insert(d.name);
        progress = true;
      }
    }
  }
  if (done.size() != program.declarations.size()) {
    throw std::runtime_error(
        "cyclic variable-level dependences (mutual recursion between "
        "distinct variables is not supported)");
  }
  return order;
}

}  // namespace rri::alpha
