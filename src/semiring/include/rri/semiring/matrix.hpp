#ifndef RRI_SEMIRING_MATRIX_HPP
#define RRI_SEMIRING_MATRIX_HPP

/// \file matrix.hpp
/// A minimal dense row-major matrix used by the semiring product kernels
/// and by tests. Deliberately small: the F-table has its own specialized
/// storage in rri::core.

#include <cassert>
#include <cstddef>
#include <vector>

namespace rri::semiring {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  T* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const T* row(std::size_t r) const noexcept { return data_.data() + r * cols_; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace rri::semiring

#endif  // RRI_SEMIRING_MATRIX_HPP
