#ifndef RRI_SEMIRING_PRODUCT_HPP
#define RRI_SEMIRING_PRODUCT_HPP

/// \file product.hpp
/// Semiring matrix products in the loop orders the paper studies.
/// C = C (+) A (x) B, i.e. C[i][j] = plus(C[i][j], times(A[i][k], B[k][j]))
/// accumulated over k. For MaxPlus this is exactly one "matrix instance of
/// max-plus operation" from the paper's Fig. 8, and the loop-order /
/// tiling trade-offs here are the ones Phase-I/II explore on R0.

#include <algorithm>
#include <cassert>

#include "rri/semiring/matrix.hpp"
#include "rri/semiring/tropical.hpp"

namespace rri::semiring {

/// Dot-product order (i, j, k): the reduction over k is innermost, which
/// defeats auto-vectorization of max-reductions — the paper's baseline
/// behaviour ("auto-vectorization is prohibited if k2 is the innermost
/// loop iteration").
template <SemiringPolicy S>
void product_naive(const Matrix<typename S::value_type>& a,
                   const Matrix<typename S::value_type>& b,
                   Matrix<typename S::value_type>& c) {
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  using T = typename S::value_type;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      T acc = c(i, j);
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc = S::plus(acc, S::times(a(i, k), b(k, j)));
      }
      c(i, j) = acc;
    }
  }
}

/// Permuted order (i, k, j): the innermost loop streams over a row of B
/// and C with the access pattern Y = plus(times(alpha, X), Y), which
/// auto-vectorizes (the paper's Phase-I loop permutation).
template <SemiringPolicy S>
void product_permuted(const Matrix<typename S::value_type>& a,
                      const Matrix<typename S::value_type>& b,
                      Matrix<typename S::value_type>& c) {
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  using T = typename S::value_type;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    T* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T alpha = a(i, k);
      const T* brow = b.row(k);
      const std::size_t n = b.cols();
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] = S::plus(crow[j], S::times(alpha, brow[j]));
      }
    }
  }
}

/// Shape of a rectangular 3-D tile over the (i, k, j) iteration space.
/// Dimension 0 tiles i, dimension 1 tiles k, dimension 2 tiles j.
/// A size of 0 means "do not tile that dimension" (one full-extent tile),
/// matching the paper's best configuration where j2 stays untiled to keep
/// the streaming effect.
struct TileShape {
  std::size_t ti = 0;
  std::size_t tk = 0;
  std::size_t tj = 0;

  std::size_t extent_i(std::size_t n) const noexcept { return ti ? ti : n; }
  std::size_t extent_k(std::size_t n) const noexcept { return tk ? tk : n; }
  std::size_t extent_j(std::size_t n) const noexcept { return tj ? tj : n; }
};

/// Tiled permuted product: chops (i, k, j) into TileShape blocks while
/// keeping j innermost inside each tile so vectorization is preserved.
template <SemiringPolicy S>
void product_tiled(const Matrix<typename S::value_type>& a,
                   const Matrix<typename S::value_type>& b,
                   Matrix<typename S::value_type>& c, TileShape tile) {
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  using T = typename S::value_type;
  const std::size_t ni = a.rows();
  const std::size_t nk = a.cols();
  const std::size_t nj = b.cols();
  const std::size_t ti = tile.extent_i(ni);
  const std::size_t tk = tile.extent_k(nk);
  const std::size_t tj = tile.extent_j(nj);
  for (std::size_t ii = 0; ii < ni; ii += ti) {
    const std::size_t iend = std::min(ii + ti, ni);
    for (std::size_t kk = 0; kk < nk; kk += tk) {
      const std::size_t kend = std::min(kk + tk, nk);
      for (std::size_t jj = 0; jj < nj; jj += tj) {
        const std::size_t jend = std::min(jj + tj, nj);
        for (std::size_t i = ii; i < iend; ++i) {
          T* crow = c.row(i);
          for (std::size_t k = kk; k < kend; ++k) {
            const T alpha = a(i, k);
            const T* brow = b.row(k);
#pragma omp simd
            for (std::size_t j = jj; j < jend; ++j) {
              crow[j] = S::plus(crow[j], S::times(alpha, brow[j]));
            }
          }
        }
      }
    }
  }
}

/// OpenMP-parallel tiled product: threads own disjoint i-tile bands, the
/// parallelization the paper applies to the outer i2 dimension of R0.
template <SemiringPolicy S>
void product_parallel(const Matrix<typename S::value_type>& a,
                      const Matrix<typename S::value_type>& b,
                      Matrix<typename S::value_type>& c, TileShape tile) {
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  using T = typename S::value_type;
  const std::size_t ni = a.rows();
  const std::size_t nk = a.cols();
  const std::size_t nj = b.cols();
  const std::size_t ti = tile.extent_i(ni);
  const std::size_t tk = tile.extent_k(nk);
  const std::size_t tj = tile.extent_j(nj);
  const std::size_t n_itiles = (ni + ti - 1) / ti;
#pragma omp parallel for schedule(dynamic)
  for (std::size_t it = 0; it < n_itiles; ++it) {
    const std::size_t ii = it * ti;
    const std::size_t iend = std::min(ii + ti, ni);
    for (std::size_t kk = 0; kk < nk; kk += tk) {
      const std::size_t kend = std::min(kk + tk, nk);
      for (std::size_t jj = 0; jj < nj; jj += tj) {
        const std::size_t jend = std::min(jj + tj, nj);
        for (std::size_t i = ii; i < iend; ++i) {
          T* crow = c.row(i);
          for (std::size_t k = kk; k < kend; ++k) {
            const T alpha = a(i, k);
            const T* brow = b.row(k);
#pragma omp simd
            for (std::size_t j = jj; j < jend; ++j) {
              crow[j] = S::plus(crow[j], S::times(alpha, brow[j]));
            }
          }
        }
      }
    }
  }
}

}  // namespace rri::semiring

#endif  // RRI_SEMIRING_PRODUCT_HPP
