#ifndef RRI_SEMIRING_LOGSUMEXP_HPP
#define RRI_SEMIRING_LOGSUMEXP_HPP

/// \file logsumexp.hpp
/// The log-domain sum-product semiring and the runtime algebra tag the
/// solver engine dispatches on.
///
/// BPPart (Ebrahimpour-Boroojeny et al. 2019) runs the BPMax recurrence
/// shapes over (+, x) to obtain an interaction partition function. Raw
/// (+, x) overflows double's exponent range once total weights exceed
/// ~709, so the production instantiation works in the log domain: a value
/// stores log(x), "multiplication" is ordinary +, and "addition" is the
/// numerically-stable log-add-exp
///
///     plus(a, b) = max(a, b) + log1p(exp(-|a - b|))
///
/// which never exponentiates anything larger than 0. Keeping every
/// intermediate in log space IS the scaling/overflow guard for long
/// strands — there is no rescaling pass to tune or get wrong.
///
/// Unlike max-plus, log-add-exp only approximately associates in floating
/// point: reassociating the reduction moves results by O(eps) per term.
/// The engine therefore fixes one reduction order across its schedules
/// (see docs/kernels.md "The algebra seam"), and cross-implementation
/// comparisons use relative tolerances instead of the bit-equality the
/// tropical instantiation guarantees.

#include <cmath>
#include <concepts>
#include <limits>
#include <optional>
#include <string_view>

#include "rri/semiring/tropical.hpp"

namespace rri::semiring {

/// Log-domain sum-product semiring over T: (logaddexp, +, -inf, 0).
/// A value v represents the weight exp(v); zero() = -inf represents 0 and
/// annihilates under times() (the -inf + finite = -inf of IEEE), one() = 0
/// represents 1.
template <std::floating_point T = double>
struct LogSumExp {
  using value_type = T;
  static constexpr T zero() noexcept {
    return -std::numeric_limits<T>::infinity();
  }
  static constexpr T one() noexcept { return T(0); }
  static T plus(T a, T b) noexcept {
    // The -inf guards keep the identity exact (and dodge the -inf - -inf
    // = NaN that the symmetric formula would produce).
    if (a == -std::numeric_limits<T>::infinity()) {
      return b;
    }
    if (b == -std::numeric_limits<T>::infinity()) {
      return a;
    }
    const T hi = a > b ? a : b;
    const T lo = a > b ? b : a;
    return hi + std::log1p(std::exp(lo - hi));
  }
  static constexpr T times(T a, T b) noexcept { return a + b; }
};

static_assert(SemiringPolicy<LogSumExp<double>>);

/// Runtime tag for the scoring algebra a job/solve runs under. Values are
/// stable: they are journaled by the serving layer (RRJL v3) and reported
/// as the `core.algebra` obs counter.
enum class Algebra : int {
  kTropical = 0,   ///< (max, +) over float — BPMax scores
  kLogSumExp = 1,  ///< log-domain (+, x) over double — BPPart partitions
};

/// Stable lower_snake name ("tropical", "logsumexp") for keys, journals,
/// reports and CLI flags.
constexpr const char* algebra_name(Algebra a) noexcept {
  switch (a) {
    case Algebra::kTropical: return "tropical";
    case Algebra::kLogSumExp: return "logsumexp";
  }
  return "unknown";
}

/// Parse an algebra name; nullopt for anything unknown (callers own the
/// error message so each surface can list what it accepts).
inline std::optional<Algebra> parse_algebra(std::string_view name) noexcept {
  if (name == "tropical") {
    return Algebra::kTropical;
  }
  if (name == "logsumexp") {
    return Algebra::kLogSumExp;
  }
  return std::nullopt;
}

}  // namespace rri::semiring

#endif  // RRI_SEMIRING_LOGSUMEXP_HPP
