#ifndef RRI_SEMIRING_TROPICAL_HPP
#define RRI_SEMIRING_TROPICAL_HPP

/// \file tropical.hpp
/// Semiring abstractions. BPMax's arithmetic lives in the tropical
/// (max-plus) semiring: "addition" is max (identity -inf) and
/// "multiplication" is + (identity 0). Kernels are written against a
/// semiring policy so tests can cross-check shapes against ordinary
/// arithmetic, mirroring the paper's observation that the double max-plus
/// reduction is matrix-multiplication-like.

#include <algorithm>
#include <concepts>
#include <limits>

namespace rri::semiring {

/// A semiring policy: value type plus the two operations and identities.
template <typename S>
concept SemiringPolicy = requires(typename S::value_type a,
                                  typename S::value_type b) {
  { S::zero() } -> std::convertible_to<typename S::value_type>;
  { S::one() } -> std::convertible_to<typename S::value_type>;
  { S::plus(a, b) } -> std::convertible_to<typename S::value_type>;
  { S::times(a, b) } -> std::convertible_to<typename S::value_type>;
};

/// Max-plus (tropical) semiring over T: (max, +, -inf, 0).
template <std::floating_point T = float>
struct MaxPlus {
  using value_type = T;
  static constexpr T zero() noexcept {
    return -std::numeric_limits<T>::infinity();
  }
  static constexpr T one() noexcept { return T(0); }
  static constexpr T plus(T a, T b) noexcept { return a > b ? a : b; }
  static constexpr T times(T a, T b) noexcept { return a + b; }
};

/// Min-plus semiring over T: (min, +, +inf, 0). Included for completeness
/// (shortest-path style recurrences share BPMax's structure).
template <std::floating_point T = float>
struct MinPlus {
  using value_type = T;
  static constexpr T zero() noexcept {
    return std::numeric_limits<T>::infinity();
  }
  static constexpr T one() noexcept { return T(0); }
  static constexpr T plus(T a, T b) noexcept { return a < b ? a : b; }
  static constexpr T times(T a, T b) noexcept { return a + b; }
};

/// Ordinary arithmetic (+, *, 0, 1); lets tests reuse the same kernels
/// against a reference they can verify independently.
template <typename T = double>
struct Arithmetic {
  using value_type = T;
  static constexpr T zero() noexcept { return T(0); }
  static constexpr T one() noexcept { return T(1); }
  static constexpr T plus(T a, T b) noexcept { return a + b; }
  static constexpr T times(T a, T b) noexcept { return a * b; }
};

static_assert(SemiringPolicy<MaxPlus<float>>);
static_assert(SemiringPolicy<MinPlus<float>>);
static_assert(SemiringPolicy<Arithmetic<double>>);

}  // namespace rri::semiring

#endif  // RRI_SEMIRING_TROPICAL_HPP
