#ifndef RRI_SEMIRING_STREAMING_HPP
#define RRI_SEMIRING_STREAMING_HPP

/// \file streaming.hpp
/// The paper's micro-benchmark kernel (Algorithm 3): repeated passes of
///   Y[i] = max(alpha + X[i], Y[i])
/// over two arrays sized to a chosen cache level. This is the exact
/// innermost access pattern of the vectorized double max-plus loop, so its
/// attained bandwidth bounds what the real kernel can reach (the paper's
/// tiled R0 gets to ~97% of this target).

#include <cstddef>
#include <cstdint>

namespace rri::semiring {

/// One streaming pass. 2 flops (one add, one max) per element.
/// Compiled in its own translation unit with the hot-path flags so the
/// compiler's auto-vectorizer treats it exactly like the kernel loops.
void maxplus_stream(float alpha, const float* x, float* y, std::size_t n);

/// Result of a timed streaming run.
struct StreamResult {
  std::size_t chunk_elems = 0;   ///< per-thread working-set elements (per array)
  std::size_t iterations = 0;    ///< passes over the chunk
  int threads = 1;               ///< OpenMP threads used
  double seconds = 0.0;          ///< wall time of the whole run
  double gflops = 0.0;           ///< 2 * elems * iters * threads / time / 1e9
};

/// Run the micro-benchmark: each of `threads` OpenMP threads owns private
/// X and Y arrays of `chunk_elems` floats (initialized from `seed`) and
/// performs `iterations` streaming passes. Returns the aggregate rate.
StreamResult run_maxplus_stream(std::size_t chunk_elems,
                                std::size_t iterations, int threads,
                                std::uint64_t seed = 42);

}  // namespace rri::semiring

#endif  // RRI_SEMIRING_STREAMING_HPP
