#include "rri/semiring/streaming.hpp"

#include <omp.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <vector>

namespace rri::semiring {

void maxplus_stream(float alpha, const float* x, float* y, std::size_t n) {
  // By-value ternary instead of std::max: the reference-taking overload
  // blocks GCC's omp-simd lowering; this form compiles to vmaxps.
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    const float v = alpha + x[i];
    const float o = y[i];
    y[i] = v > o ? v : o;
  }
}

StreamResult run_maxplus_stream(std::size_t chunk_elems,
                                std::size_t iterations, int threads,
                                std::uint64_t seed) {
  StreamResult result;
  result.chunk_elems = chunk_elems;
  result.iterations = iterations;
  result.threads = threads;

  const auto start = std::chrono::steady_clock::now();
#pragma omp parallel num_threads(threads)
  {
    std::mt19937_64 rng(seed + static_cast<std::uint64_t>(omp_get_thread_num()));
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    std::vector<float> x(chunk_elems);
    std::vector<float> y(chunk_elems);
    for (std::size_t i = 0; i < chunk_elems; ++i) {
      x[i] = dist(rng);
      y[i] = dist(rng);
    }
    const float alpha = dist(rng);
    for (std::size_t it = 0; it < iterations; ++it) {
      maxplus_stream(alpha, x.data(), y.data(), chunk_elems);
    }
    // Keep the computation observable so the optimizer cannot drop it.
    volatile float sink = y[chunk_elems / 2];
    (void)sink;
  }
  const auto stop = std::chrono::steady_clock::now();

  result.seconds = std::chrono::duration<double>(stop - start).count();
  const double flops = 2.0 * static_cast<double>(chunk_elems) *
                       static_cast<double>(iterations) *
                       static_cast<double>(threads);
  result.gflops = result.seconds > 0 ? flops / result.seconds / 1e9 : 0.0;
  return result;
}

}  // namespace rri::semiring
