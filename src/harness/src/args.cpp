#include "rri/harness/args.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace rri::harness {

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  specs_.emplace_back(name, Spec{help, "", true, false, ""});
  flags_[name] = false;
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_.emplace_back(name, Spec{help, default_value, false, false, ""});
  values_[name] = default_value;
}

void ArgParser::add_implicit_option(const std::string& name,
                                    const std::string& help,
                                    const std::string& implicit_value) {
  specs_.emplace_back(name, Spec{help, "", false, true, implicit_value});
  values_[name] = "";
}

void ArgParser::add_list_option(const std::string& name,
                                const std::string& help) {
  Spec spec{help, "", false, false, ""};
  spec.is_list = true;
  specs_.emplace_back(name, std::move(spec));
  lists_[name];  // declare so list() never throws for a declared option
}

void ArgParser::set_positional_usage(std::string usage, std::size_t min_count,
                                     std::size_t max_count) {
  positional_usage_ = std::move(usage);
  min_positional_ = min_count;
  max_positional_ = max_count;
}

bool ArgParser::parse(int argc, const char* const* argv, std::ostream& err) {
  const auto find_spec = [&](const std::string& name) -> const Spec* {
    for (const auto& [spec_name, spec] : specs_) {
      if (spec_name == name) {
        return &spec;
      }
    }
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      print_help(err);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const Spec* spec = find_spec(name);
    if (spec == nullptr) {
      err << program_ << ": unknown option --" << name << "\n";
      return false;
    }
    if (spec->is_flag) {
      if (has_inline) {
        err << program_ << ": flag --" << name << " takes no value\n";
        return false;
      }
      flags_[name] = true;
      continue;
    }
    if (spec->is_list) {
      if (has_inline) {
        lists_[name].push_back(std::move(inline_value));
      } else {
        if (i + 1 >= argc) {
          err << program_ << ": option --" << name << " needs a value\n";
          return false;
        }
        lists_[name].push_back(argv[++i]);
      }
      continue;
    }
    if (has_inline) {
      values_[name] = std::move(inline_value);
    } else if (spec->is_implicit) {
      values_[name] = spec->implicit_value;
    } else {
      if (i + 1 >= argc) {
        err << program_ << ": option --" << name << " needs a value\n";
        return false;
      }
      values_[name] = argv[++i];
    }
  }
  if (positional_.size() < min_positional_ ||
      positional_.size() > max_positional_) {
    err << program_ << ": expected " << positional_usage_ << "\n";
    return false;
  }
  return true;
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::out_of_range("undeclared flag --" + name);
  }
  return it->second;
}

const std::string& ArgParser::option(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::out_of_range("undeclared option --" + name);
  }
  return it->second;
}

int ArgParser::option_int(const std::string& name) const {
  return std::atoi(option(name).c_str());
}

const std::vector<std::string>& ArgParser::list(
    const std::string& name) const {
  const auto it = lists_.find(name);
  if (it == lists_.end()) {
    throw std::out_of_range("undeclared list option --" + name);
  }
  return it->second;
}

std::pair<std::string, std::string> ArgParser::split_key_value(
    const std::string& item) {
  const auto eq = item.find('=');
  if (eq == std::string::npos) {
    return {item, ""};
  }
  return {item.substr(0, eq), item.substr(eq + 1)};
}

void ArgParser::print_help(std::ostream& out) const {
  out << "usage: " << program_ << " [options] " << positional_usage_ << "\n";
  out << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name;
    if (spec.is_implicit) {
      out << "[=<value>]";
    } else if (spec.is_list) {
      out << " <value>  (repeatable)";
    } else if (!spec.is_flag) {
      out << " <value>";
    }
    out << "\n      " << spec.help;
    if (!spec.is_flag && !spec.default_value.empty()) {
      out << " (default: " << spec.default_value << ")";
    }
    out << "\n";
  }
  out << "  --help\n      show this message\n";
}

}  // namespace rri::harness
