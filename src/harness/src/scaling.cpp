#include "rri/harness/scaling.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

namespace rri::harness {
namespace {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || v <= 0.0) {
    return fallback;
  }
  return v;
}

int env_int(const char* name, int fallback) {
  const double v = env_double(name, static_cast<double>(fallback));
  return static_cast<int>(v);
}

}  // namespace

double bench_scale() { return env_double("RRI_BENCH_SCALE", 1.0); }

std::vector<int> scaled_lengths(std::vector<int> base) {
  const double scale = bench_scale();
  for (int& len : base) {
    len = std::max(4, static_cast<int>(std::lround(len * scale)));
  }
  return base;
}

std::vector<int> thread_sweep(int max_threads) {
  const int cap = env_int("RRI_BENCH_MAX_THREADS", max_threads);
  const int limit = std::max(1, std::min(max_threads, cap));
  std::vector<int> sweep;
  for (int t = 1; t < limit; t *= 2) {
    sweep.push_back(t);
  }
  sweep.push_back(limit);
  return sweep;
}

int bench_reps(int fallback) {
  return std::max(1, env_int("RRI_BENCH_REPS", fallback));
}

}  // namespace rri::harness
