#include "rri/harness/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rri::harness {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ReportTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("ReportTable row has " +
                                std::to_string(cells.size()) +
                                " cells; expected " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

void ReportTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    out << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void ReportTable::print_csv(std::ostream& out) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      return s;
    }
    std::string quoted = "\"";
    for (const char ch : s) {
      if (ch == '"') {
        quoted += '"';
      }
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        out << ',';
      }
      out << escape(row[c]);
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string fmt_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace rri::harness
