#include "rri/harness/flops.hpp"

namespace rri::harness {

double split_triples(int l) {
  const double ld = l;
  return (ld * ld * ld - ld) / 6.0;
}

double interval_pairs(int l) {
  const double ld = l;
  return ld * (ld + 1.0) / 2.0;
}

BpmaxFlopCounts bpmax_flops(int m, int n) {
  BpmaxFlopCounts c;
  const double tm = split_triples(m);
  const double tn = split_triples(n);
  const double pm = interval_pairs(m);
  const double pn = interval_pairs(n);
  c.r0 = 2.0 * tm * tn;
  c.r1 = 2.0 * pm * tn;
  c.r2 = 2.0 * pm * tn;
  c.r3 = 2.0 * tm * pn;
  c.r4 = 2.0 * tm * pn;
  c.cells = 6.0 * pm * pn;
  return c;
}

double double_maxplus_flops(int m, int n) {
  return 2.0 * split_triples(m) * split_triples(n);
}

double stable_flops(int l) {
  return 3.0 * split_triples(l);
}

}  // namespace rri::harness
