#ifndef RRI_HARNESS_TIMING_HPP
#define RRI_HARNESS_TIMING_HPP

/// \file timing.hpp
/// Wall-clock timing helpers for the benchmark harness. Kernel runs here
/// are long relative to clock resolution, so best-of-R wall time is the
/// estimator (the minimum is the least noise-contaminated statistic for
/// compute-bound kernels).

#include <chrono>
#include <utility>

namespace rri::harness {

class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Time a single call.
template <typename F>
double time_call(F&& f) {
  StopWatch sw;
  std::forward<F>(f)();
  return sw.seconds();
}

struct TimedRuns {
  double best = 0.0;
  double mean = 0.0;
  int reps = 0;
};

/// Run `f` `reps` times (at least once) and report best and mean seconds.
template <typename F>
TimedRuns time_repeat(F&& f, int reps) {
  TimedRuns out;
  out.reps = reps < 1 ? 1 : reps;
  double total = 0.0;
  for (int r = 0; r < out.reps; ++r) {
    const double s = time_call(f);
    total += s;
    if (r == 0 || s < out.best) {
      out.best = s;
    }
  }
  out.mean = total / out.reps;
  return out;
}

}  // namespace rri::harness

#endif  // RRI_HARNESS_TIMING_HPP
