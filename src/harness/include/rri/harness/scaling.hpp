#ifndef RRI_HARNESS_SCALING_HPP
#define RRI_HARNESS_SCALING_HPP

/// \file scaling.hpp
/// Benchmark workload scaling. The paper's testbed ran 6-12 threads on
/// sequences in the hundreds-to-thousands; this repo must also run on
/// small CI boxes, so every bench multiplies its base sizes by
/// RRI_BENCH_SCALE (default 1) and caps thread sweeps at
/// RRI_BENCH_MAX_THREADS (default: the OpenMP max).

#include <vector>

namespace rri::harness {

/// RRI_BENCH_SCALE as a positive double; 1.0 when unset or malformed.
double bench_scale();

/// Base lengths multiplied by bench_scale(), rounded, floored at 4.
std::vector<int> scaled_lengths(std::vector<int> base);

/// Thread counts to sweep: 1, 2, 4, ... up to `max_threads` (and
/// `max_threads` itself), bounded by RRI_BENCH_MAX_THREADS if set.
std::vector<int> thread_sweep(int max_threads);

/// Repetitions per measurement: RRI_BENCH_REPS, default `fallback`.
int bench_reps(int fallback = 2);

}  // namespace rri::harness

#endif  // RRI_HARNESS_SCALING_HPP
