#ifndef RRI_HARNESS_FLOPS_HPP
#define RRI_HARNESS_FLOPS_HPP

/// \file flops.hpp
/// Exact closed-form operation counts for the BPMax kernels, counting 2
/// flops (one add, one max) per reduction candidate as the paper does.
/// These convert measured wall times into the GFLOPS the figures report.
/// tests/harness_test.cpp verifies every closed form against direct loop
/// enumeration.

namespace rri::harness {

/// Number of (i, k, j) triples with 0 <= i <= k < j < l — the per-strand
/// split count: (l³ - l) / 6.
double split_triples(int l);

/// Number of intervals 0 <= i <= j < l: l (l + 1) / 2.
double interval_pairs(int l);

/// Per-reduction flop counts of one full BPMax fill for strand lengths
/// (m, n).
struct BpmaxFlopCounts {
  double r0 = 0;     ///< double max-plus: 2 · T(m) · T(n)
  double r1 = 0;     ///< 2 · P(m) · T(n)
  double r2 = 0;     ///< 2 · P(m) · T(n)
  double r3 = 0;     ///< 2 · T(m) · P(n)
  double r4 = 0;     ///< 2 · T(m) · P(n)
  double cells = 0;  ///< per-cell terms (S1+S2, both pair cases): 6 · P(m) · P(n)

  double total() const { return r0 + r1 + r2 + r3 + r4 + cells; }
};

BpmaxFlopCounts bpmax_flops(int m, int n);

/// Flops of the standalone double max-plus problem: 2 · T(m) · T(n).
double double_maxplus_flops(int m, int n);

/// Flops of one single-strand S-table fill (2 per pairing candidate plus
/// the unpaired-case max): 3 · T(l) rounded to the exact loop count.
double stable_flops(int l);

}  // namespace rri::harness

#endif  // RRI_HARNESS_FLOPS_HPP
