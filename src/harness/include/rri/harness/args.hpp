#ifndef RRI_HARNESS_ARGS_HPP
#define RRI_HARNESS_ARGS_HPP

/// \file args.hpp
/// A small command-line option parser for the repo's tools. Supports
/// --flag, --option value, --option=value, positional arguments, and
/// generated --help text. Deliberately minimal; errors are reported, not
/// thrown, so tools can exit with a usage message.

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace rri::harness {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Boolean switch: present or absent.
  void add_flag(const std::string& name, const std::string& help);

  /// Valued option with a default (shown in --help).
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Option usable bare or with an inline value: `--name` yields
  /// `implicit_value`, `--name=V` yields V, absent yields "". Never
  /// consumes the next argv token, so it composes with positionals
  /// (e.g. `bpmax --profile SEQ1 SEQ2`).
  void add_implicit_option(const std::string& name, const std::string& help,
                           const std::string& implicit_value);

  /// Repeatable valued option: every occurrence (`--name V` or
  /// `--name=V`) appends to the list returned by list(). The mechanism
  /// behind `--param k=v` style options (see split_key_value).
  void add_list_option(const std::string& name, const std::string& help);

  /// Describe expected positional arguments for the usage line.
  void set_positional_usage(std::string usage, std::size_t min_count,
                            std::size_t max_count);

  /// Parse argv. Returns false (after printing to `err`) on unknown
  /// options, missing values, bad positional count, or --help (which
  /// prints to `err` and is not an error for the caller's exit code —
  /// check help_requested()).
  bool parse(int argc, const char* const* argv, std::ostream& err);

  bool help_requested() const noexcept { return help_requested_; }

  bool flag(const std::string& name) const;
  const std::string& option(const std::string& name) const;
  int option_int(const std::string& name) const;
  /// All values given for a list option, in command-line order (empty
  /// when the option never appeared).
  const std::vector<std::string>& list(const std::string& name) const;
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Split one "k=v" list item at the first '='; an item without '='
  /// yields {item, ""} so callers can distinguish bare keys.
  static std::pair<std::string, std::string> split_key_value(
      const std::string& item);

  void print_help(std::ostream& out) const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool is_flag = false;
    bool is_implicit = false;
    std::string implicit_value;
    bool is_list = false;
  };

  std::string program_;
  std::string description_;
  std::string positional_usage_;
  std::size_t min_positional_ = 0;
  std::size_t max_positional_ = SIZE_MAX;
  std::vector<std::pair<std::string, Spec>> specs_;  // declaration order
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::map<std::string, std::vector<std::string>> lists_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace rri::harness

#endif  // RRI_HARNESS_ARGS_HPP
