#ifndef RRI_HARNESS_REPORT_HPP
#define RRI_HARNESS_REPORT_HPP

/// \file report.hpp
/// Small report-table builder: the bench binaries print aligned
/// human-readable tables (and optionally CSV) so EXPERIMENTS.md rows can
/// be pasted straight from their output.

#include <iosfwd>
#include <string>
#include <vector>

namespace rri::harness {

class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  /// Append one row; must match the header count.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Read access for exporters (e.g. the obs JSON series tables).
  const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  const std::vector<std::vector<std::string>>& row_data() const noexcept {
    return rows_;
  }

  /// Aligned plain-text table with a header rule.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.34").
std::string fmt_double(double v, int precision = 2);

/// Human-readable engineering formatting for large counts ("1.23e9").
std::string fmt_sci(double v, int precision = 2);

}  // namespace rri::harness

#endif  // RRI_HARNESS_REPORT_HPP
