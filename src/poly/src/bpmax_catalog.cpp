#include "rri/poly/bpmax_catalog.hpp"

#include <stdexcept>

namespace rri::poly {

namespace {

const std::vector<std::string> kFDims = {"M", "N", "i1", "j1", "i2", "j2"};

std::vector<std::string> with_extra(std::vector<std::string> extra) {
  std::vector<std::string> dims = kFDims;
  dims.insert(dims.end(), extra.begin(), extra.end());
  return dims;
}

/// Common interval bounds 0 <= i1 <= j1 <= M-1 and 0 <= i2 <= j2 <= N-1
/// on a space that contains all six core dimensions.
void add_core_bounds(ConstraintSystem& cs) {
  const ExprBuilder b(cs.space());
  cs.add_ge(b("i1"), b.constant(0));
  cs.add_ge(b("j1"), b("i1"));
  cs.add_le(b("j1"), b("M") - 1);
  cs.add_ge(b("i2"), b.constant(0));
  cs.add_ge(b("j2"), b("i2"));
  cs.add_le(b("j2"), b("N") - 1);
}

/// Coordinate map into a statement's domain given expressions for each of
/// its dimensions, by name, over `space`.
std::vector<AffineExpr> coords(const Space& space,
                               const std::vector<std::string>& stmt_dims,
                               const std::map<std::string, AffineExpr>& exprs) {
  const ExprBuilder b(space);
  std::vector<AffineExpr> out;
  out.reserve(stmt_dims.size());
  for (const std::string& dim : stmt_dims) {
    const auto it = exprs.find(dim);
    out.push_back(it != exprs.end() ? it->second : b(dim));
  }
  return out;
}

/// Shorthand: build a StmtSchedule for statement `stmt` with time
/// components given as expressions over that statement's space.
StmtSchedule sched(const std::string& stmt,
                   const std::vector<AffineExpr>& time) {
  return StmtSchedule{statement_space(stmt), time};
}

}  // namespace

Space statement_space(const std::string& stmt) {
  if (stmt == "F") {
    return Space(kFDims);
  }
  if (stmt == "R0") {
    return Space(with_extra({"k1", "k2"}));
  }
  if (stmt == "R1" || stmt == "R2") {
    return Space(with_extra({"k2"}));
  }
  if (stmt == "R3" || stmt == "R4") {
    return Space(with_extra({"k1"}));
  }
  throw std::invalid_argument("unknown BPMax statement: " + stmt);
}

namespace {

/// Dependences of R0 and F's use of R0 (shared by the full program and
/// the standalone double max-plus problem).
void add_r0_dependences(std::vector<Dependence>& deps) {
  const Space sp = statement_space("R0");
  const ExprBuilder b(sp);

  ConstraintSystem dom(sp);
  add_core_bounds(dom);
  dom.add_ge(b("k1"), b("i1"));
  dom.add_lt(b("k1"), b("j1"));
  dom.add_ge(b("k2"), b("i2"));
  dom.add_lt(b("k2"), b("j2"));

  const std::vector<std::string> r0_dims = {"M", "N", "i1", "j1",
                                            "i2", "j2", "k1", "k2"};
  const auto tgt_r0 = coords(sp, r0_dims, {});

  deps.push_back(Dependence{
      "R0 reads F(i1,k1,i2,k2)", "F", "R0", dom,
      coords(sp, kFDims, {{"j1", b("k1")}, {"j2", b("k2")}}), tgt_r0});
  deps.push_back(Dependence{
      "R0 reads F(k1+1,j1,k2+1,j2)", "F", "R0", dom,
      coords(sp, kFDims, {{"i1", b("k1") + 1}, {"i2", b("k2") + 1}}),
      tgt_r0});
  deps.push_back(Dependence{
      "F uses R0(i1,j1,i2,j2,k1,k2)", "R0", "F", dom, tgt_r0,
      coords(sp, kFDims, {})});
}

}  // namespace

std::vector<Dependence> dmp_dependences() {
  std::vector<Dependence> deps;
  add_r0_dependences(deps);
  return deps;
}

std::vector<Dependence> bpmax_dependences() {
  std::vector<Dependence> deps;

  // --- c1: F(i1,j1,...) reads F(i1+1,j1-1,...) when the interior is
  // non-empty (j1 >= i1 + 2; the j1 == i1+1 case reads S2 instead).
  {
    const Space sp = statement_space("F");
    const ExprBuilder b(sp);
    ConstraintSystem dom(sp);
    add_core_bounds(dom);
    dom.add_ge(b("j1"), b("i1") + 2);
    deps.push_back(Dependence{
        "c1 reads F(i1+1,j1-1,i2,j2)", "F", "F", dom,
        coords(sp, kFDims, {{"i1", b("i1") + 1}, {"j1", b("j1") - 1}}),
        coords(sp, kFDims, {})});
  }
  // --- c2: symmetric on strand 2.
  {
    const Space sp = statement_space("F");
    const ExprBuilder b(sp);
    ConstraintSystem dom(sp);
    add_core_bounds(dom);
    dom.add_ge(b("j2"), b("i2") + 2);
    deps.push_back(Dependence{
        "c2 reads F(i1,j1,i2+1,j2-1)", "F", "F", dom,
        coords(sp, kFDims, {{"i2", b("i2") + 1}, {"j2", b("j2") - 1}}),
        coords(sp, kFDims, {})});
  }

  add_r0_dependences(deps);

  // --- R1 / R2 (split over k2).
  for (const auto& stmt : {std::string("R1"), std::string("R2")}) {
    const Space sp = statement_space(stmt);
    const ExprBuilder b(sp);
    ConstraintSystem dom(sp);
    add_core_bounds(dom);
    dom.add_ge(b("k2"), b("i2"));
    dom.add_lt(b("k2"), b("j2"));
    const std::vector<std::string> body_dims = {"M", "N", "i1", "j1",
                                                "i2", "j2", "k2"};
    const auto tgt_body = coords(sp, body_dims, {});
    if (stmt == "R1") {
      deps.push_back(Dependence{
          "R1 reads F(i1,j1,k2+1,j2)", "F", stmt, dom,
          coords(sp, kFDims, {{"i2", b("k2") + 1}}), tgt_body});
    } else {
      deps.push_back(Dependence{
          "R2 reads F(i1,j1,i2,k2)", "F", stmt, dom,
          coords(sp, kFDims, {{"j2", b("k2")}}), tgt_body});
    }
    deps.push_back(Dependence{
        "F uses " + stmt, stmt, "F", dom, tgt_body, coords(sp, kFDims, {})});
  }

  // --- R3 / R4 (split over k1).
  for (const auto& stmt : {std::string("R3"), std::string("R4")}) {
    const Space sp = statement_space(stmt);
    const ExprBuilder b(sp);
    ConstraintSystem dom(sp);
    add_core_bounds(dom);
    dom.add_ge(b("k1"), b("i1"));
    dom.add_lt(b("k1"), b("j1"));
    const std::vector<std::string> body_dims = {"M", "N", "i1", "j1",
                                                "i2", "j2", "k1"};
    const auto tgt_body = coords(sp, body_dims, {});
    if (stmt == "R3") {
      deps.push_back(Dependence{
          "R3 reads F(i1,k1,i2,j2)", "F", stmt, dom,
          coords(sp, kFDims, {{"j1", b("k1")}}), tgt_body});
    } else {
      deps.push_back(Dependence{
          "R4 reads F(k1+1,j1,i2,j2)", "F", stmt, dom,
          coords(sp, kFDims, {{"i1", b("k1") + 1}}), tgt_body});
    }
    deps.push_back(Dependence{
        "F uses " + stmt, stmt, "F", dom, tgt_body, coords(sp, kFDims, {})});
  }

  return deps;
}

namespace {

/// Shorthand for schedule construction over a statement's space.
struct SchedBuilder {
  explicit SchedBuilder(const std::string& stmt)
      : space(statement_space(stmt)), b(space) {}

  AffineExpr operator()(const std::string& name) const { return b(name); }
  AffineExpr c(std::int64_t v) const { return b.constant(v); }

  Space space;
  ExprBuilder b;
};

}  // namespace

std::vector<ScheduleSet> bpmax_schedule_catalog() {
  std::vector<ScheduleSet> catalog;

  // --- Original program order: (j1-i1, j2-i2, i1, i2, k1, k2) with the
  // table write after all split loops of its cell.
  {
    ScheduleSet set;
    set.name = "original";
    set.description =
        "original BPMax program order: diagonal-by-diagonal on both "
        "triangle levels, reductions innermost (k2 innermost blocks "
        "vectorization)";
    set.vectorizable = false;
    {
      SchedBuilder s("F");
      // The table write happens after every split loop of its cell; its
      // fifth component must dominate both k1 (< M) and k2 (< N), hence
      // M + N.
      set.by_stmt["F"] = sched(
          "F", {s("j1") - s("i1"), s("j2") - s("i2"), s("i1"), s("i2"),
                s("M") + s("N"), s.c(0)});
    }
    {
      SchedBuilder s("R0");
      set.by_stmt["R0"] = sched(
          "R0", {s("j1") - s("i1"), s("j2") - s("i2"), s("i1"), s("i2"),
                 s("k1"), s("k2")});
    }
    for (const auto& stmt : {std::string("R1"), std::string("R2")}) {
      SchedBuilder s(stmt);
      set.by_stmt[stmt] = sched(
          stmt, {s("j1") - s("i1"), s("j2") - s("i2"), s("i1"), s("i2"),
                 s("k2"), s("N")});
    }
    for (const auto& stmt : {std::string("R3"), std::string("R4")}) {
      SchedBuilder s(stmt);
      set.by_stmt[stmt] = sched(
          stmt, {s("j1") - s("i1"), s("j2") - s("i2"), s("i1"), s("i2"),
                 s("k1"), s("N")});
    }
    catalog.push_back(std::move(set));
  }

  // --- Table II: fine-grain schedule (parallel dimension 5, i.e. the
  // -i2 row dimension of each instance).
  {
    ScheduleSet set;
    set.name = "fine";
    set.description =
        "Table II fine-grain: triangles bottom-up (-i1, j1), split "
        "instances ordered by k1, rows of each instance independent";
    {
      SchedBuilder s("F");
      set.by_stmt["F"] = sched(
          "F", {s.c(1), -s("i1"), s("j1"), s("j1"), -s("i2"), s.c(0),
                s("j2"), s.c(0)});
    }
    for (const auto& stmt : {std::string("R1"), std::string("R2")}) {
      SchedBuilder s(stmt);
      set.by_stmt[stmt] = sched(
          stmt, {s.c(1), -s("i1"), s("j1"), s("j1"), -s("i2"), s.c(0),
                 s("k2"), s("j2")});
    }
    {
      SchedBuilder s("R0");
      set.by_stmt["R0"] = sched(
          "R0", {s.c(1), -s("i1"), s("j1"), s("k1"), s.c(-1), -s("i2"),
                 s("k2"), s("j2")});
    }
    for (const auto& stmt : {std::string("R3"), std::string("R4")}) {
      SchedBuilder s(stmt);
      set.by_stmt[stmt] = sched(
          stmt, {s.c(1), -s("i1"), s("j1"), s("k1"), s.c(-1), -s("i2"),
                 s("i2"), s("j2")});
    }
    catalog.push_back(std::move(set));
  }

  // --- Table III: coarse-grain schedule (parallel dimension 2: distinct
  // triangles i1 of one diagonal).
  {
    ScheduleSet set;
    set.name = "coarse";
    set.description =
        "Table III coarse-grain: diagonal-by-diagonal over triangles, "
        "threads own whole triangles";
    {
      SchedBuilder s("F");
      set.by_stmt["F"] = sched(
          "F", {s.c(1), s("j1") - s("i1"), s("i1"), s("j1"), -s("i2"),
                s("j2"), s("j2")});
    }
    for (const auto& stmt : {std::string("R1"), std::string("R2")}) {
      SchedBuilder s(stmt);
      set.by_stmt[stmt] = sched(
          stmt, {s.c(1), s("j1") - s("i1"), s("i1"), s("j1"), -s("i2"),
                 s("k2"), s("j2")});
    }
    {
      SchedBuilder s("R0");
      set.by_stmt["R0"] = sched(
          "R0", {s.c(1), s("j1") - s("i1"), s("i1"), s("k1"), s("i2"),
                 s("k2"), s("j2")});
    }
    for (const auto& stmt : {std::string("R3"), std::string("R4")}) {
      SchedBuilder s(stmt);
      set.by_stmt[stmt] = sched(
          stmt, {s.c(1), s("j1") - s("i1"), s("i1"), s("k1"), s("i2"),
                 s("i2"), s("j2")});
    }
    catalog.push_back(std::move(set));
  }

  // --- Table IV: hybrid schedule. R0/R3/R4 run per-triangle (fine
  // grain); F/R1/R2 are deferred to "time M" within the diagonal and run
  // coarse grain (parallel dimension 4, the i1 of the finalization).
  {
    ScheduleSet set;
    set.name = "hybrid";
    set.description =
        "Table IV hybrid: fine-grain splits, coarse-grain finalization "
        "(F/R1/R2 scheduled at component M, after every k1 <= M-1)";
    {
      SchedBuilder s("F");
      set.by_stmt["F"] = sched(
          "F", {s.c(1), s("j1") - s("i1"), s("M"), s.c(0), s("i1"),
                -s("i2"), s("j2"), s.c(0)});
    }
    for (const auto& stmt : {std::string("R1"), std::string("R2")}) {
      SchedBuilder s(stmt);
      set.by_stmt[stmt] = sched(
          stmt, {s.c(1), s("j1") - s("i1"), s("M"), s.c(0), s("i1"),
                 -s("i2"), s("k2"), s("j2")});
    }
    {
      SchedBuilder s("R0");
      set.by_stmt["R0"] = sched(
          "R0", {s.c(1), s("j1") - s("i1"), s("i1"), s("k1"), s("i2"),
                 s("k2"), s("j2"), s.c(0)});
    }
    for (const auto& stmt : {std::string("R3"), std::string("R4")}) {
      SchedBuilder s(stmt);
      set.by_stmt[stmt] = sched(
          stmt, {s.c(1), s("j1") - s("i1"), s("i1"), s("k1"), s("i2"),
                 s("i2"), s("j2"), s.c(0)});
    }
    catalog.push_back(std::move(set));
  }

  return catalog;
}

std::vector<ScheduleSet> dmp_schedule_catalog() {
  std::vector<ScheduleSet> catalog;

  auto make = [](std::string name, std::string description, bool vectorizable,
                 std::vector<AffineExpr> f_time,
                 std::vector<AffineExpr> r0_time) {
    ScheduleSet set;
    set.name = std::move(name);
    set.description = std::move(description);
    set.vectorizable = vectorizable;
    set.by_stmt["F"] = sched("F", std::move(f_time));
    set.by_stmt["R0"] = sched("R0", std::move(r0_time));
    return set;
  };

  const SchedBuilder f("F");
  const SchedBuilder r("R0");

  catalog.push_back(make(
      "original",
      "original order (j1-i1, j2-i2, i1, i2, k1, k2); k2 innermost",
      false,
      {f("j1") - f("i1"), f("j2") - f("i2"), f("i1"), f("i2"), f("M"),
       f("N")},
      {r("j1") - r("i1"), r("j2") - r("i2"), r("i1"), r("i2"), r("k1"),
       r("k2")}));

  catalog.push_back(make(
      "permuted_diag",
      "triangles by diagonal (j1-i1, i1), instances by k1, j2 innermost",
      true,
      {f("j1") - f("i1"), f("i1"), f("j1"), f("i2"), f("j2"), f("j2")},
      {r("j1") - r("i1"), r("i1"), r("k1"), r("i2"), r("k2"), r("j2")}));

  catalog.push_back(make(
      "permuted_bottomup",
      "triangles bottom-up then left-to-right (-i1, j1), j2 innermost",
      true,
      {-f("i1"), f("j1"), f("j1"), f("i2"), f("j2"), f("j2")},
      {-r("i1"), r("j1"), r("k1"), r("i2"), r("k2"), r("j2")}));

  catalog.push_back(make(
      "permuted_mrev",
      "triangles by (M-i1, j1), j2 innermost",
      true,
      {f("M") - f("i1"), f("j1"), f("j1"), f("i2"), f("j2"), f("j2")},
      {r("M") - r("i1"), r("j1"), r("k1"), r("i2"), r("k2"), r("j2")}));

  catalog.push_back(make(
      "permuted_k2_inner",
      "legal permutation that keeps k2 innermost (vectorization blocked)",
      false,
      {f("j1") - f("i1"), f("i1"), f("j1"), f("i2"), f("j2"), f("j2")},
      {r("j1") - r("i1"), r("i1"), r("k1"), r("i2"), r("j2"), r("k2")}));

  catalog.push_back(make(
      "broken_f_before_r0",
      "negative control: the table write is scheduled before its own "
      "reduction body",
      true,
      {f("j1") - f("i1"), f("i1"), f.c(0), f("i2"), f("j2"), f("j2")},
      {r("j1") - r("i1"), r("i1"), r.c(1), r("i2"), r("k2"), r("j2")}));

  return catalog;
}

std::vector<CatalogVerdict> verify_schedule_set(
    const ScheduleSet& set, const std::vector<Dependence>& deps) {
  std::vector<CatalogVerdict> verdicts;
  for (const Dependence& dep : deps) {
    const auto src = set.by_stmt.find(dep.src_stmt);
    const auto tgt = set.by_stmt.find(dep.tgt_stmt);
    if (src == set.by_stmt.end() || tgt == set.by_stmt.end()) {
      continue;
    }
    const LegalityResult r = check_dependence(dep, src->second, tgt->second);
    verdicts.push_back(
        CatalogVerdict{set.name, dep.name, r.legal, r.violation_level});
  }
  return verdicts;
}

bool all_legal(const std::vector<CatalogVerdict>& verdicts) {
  for (const CatalogVerdict& v : verdicts) {
    if (!v.legal) {
      return false;
    }
  }
  return true;
}

}  // namespace rri::poly
