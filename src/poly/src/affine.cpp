#include "rri/poly/affine.hpp"

namespace rri::poly {

std::string AffineExpr::to_string(const Space& space) const {
  std::string out;
  for (int d = 0; d < dims(); ++d) {
    const std::int64_t c = coeff(d);
    if (c == 0) {
      continue;
    }
    if (!out.empty()) {
      out += (c > 0) ? " + " : " - ";
    } else if (c < 0) {
      out += "-";
    }
    const std::int64_t mag = c < 0 ? -c : c;
    if (mag != 1) {
      out += std::to_string(mag) + "*";
    }
    out += space.names()[static_cast<std::size_t>(d)];
  }
  if (const_ != 0 || out.empty()) {
    if (!out.empty()) {
      out += (const_ >= 0) ? " + " : " - ";
      out += std::to_string(const_ >= 0 ? const_ : -const_);
    } else {
      out = std::to_string(const_);
    }
  }
  return out;
}

}  // namespace rri::poly
