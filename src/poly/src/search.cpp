#include "rri/poly/search.hpp"

#include <algorithm>
#include <stdexcept>

namespace rri::poly {
namespace {

/// Weak satisfaction at one level: θ_tgt >= θ_src over the whole
/// dependence domain (no violation of the lexicographic prefix).
bool weakly_satisfies(const Dependence& dep, const AffineExpr& src_theta,
                      const AffineExpr& tgt_theta) {
  ConstraintSystem violation = dep.domain;
  const AffineExpr src_t = src_theta.substitute(dep.src_coords);
  const AffineExpr tgt_t = tgt_theta.substitute(dep.tgt_coords);
  violation.add_lt(tgt_t, src_t);  // tgt <= src - 1 anywhere?
  return violation.empty_rational();
}

/// Strong satisfaction: θ_tgt >= θ_src + 1 everywhere (the dependence is
/// fully resolved at this level and drops out).
bool strongly_satisfies(const Dependence& dep, const AffineExpr& src_theta,
                        const AffineExpr& tgt_theta) {
  ConstraintSystem violation = dep.domain;
  const AffineExpr src_t = src_theta.substitute(dep.src_coords);
  const AffineExpr tgt_t = tgt_theta.substitute(dep.tgt_coords);
  violation.add_le(tgt_t, src_t);  // tgt <= src anywhere?
  return violation.empty_rational();
}

/// All candidate level functions for one statement: affine forms with at
/// most `max_active` nonzero coefficients drawn from [lo, hi], over the
/// index dimensions (and optionally the parameters). The zero function is
/// always included so a statement can sit still at a level.
std::vector<AffineExpr> candidates(const Space& space,
                                   const SearchOptions& opt) {
  const int dims = space.size();
  const int first = opt.allow_parameters ? 0 : opt.parameter_dims;
  std::vector<AffineExpr> out;
  out.push_back(AffineExpr(dims));  // zero

  std::vector<int> usable;
  for (int d = first; d < dims; ++d) {
    usable.push_back(d);
  }
  // Enumerate supports of size 1..max_active and coefficient values.
  std::vector<int> support;
  std::function<void(std::size_t)> rec = [&](std::size_t from) {
    if (!support.empty()) {
      // Assign every nonzero coefficient combination to the support.
      std::vector<std::int64_t> coeffs(support.size(), opt.coeff_min);
      while (true) {
        bool all_nonzero = true;
        for (const std::int64_t c : coeffs) {
          if (c == 0) {
            all_nonzero = false;
            break;
          }
        }
        if (all_nonzero) {
          AffineExpr e(dims);
          for (std::size_t t = 0; t < support.size(); ++t) {
            e.coeff(support[t]) = coeffs[t];
          }
          out.push_back(std::move(e));
        }
        std::size_t d = 0;
        while (d < coeffs.size()) {
          if (++coeffs[d] <= opt.coeff_max) {
            break;
          }
          coeffs[d] = opt.coeff_min;
          ++d;
        }
        if (d == coeffs.size()) {
          break;
        }
      }
    }
    if (static_cast<int>(support.size()) == opt.max_active_dims) {
      return;
    }
    for (std::size_t u = from; u < usable.size(); ++u) {
      support.push_back(usable[u]);
      rec(u + 1);
      support.pop_back();
    }
  };
  rec(0);
  return out;
}

struct LevelChoice {
  std::map<std::string, AffineExpr> theta;
  int strong_count = -1;
};

}  // namespace

SearchResult find_schedules(const std::map<std::string, Space>& spaces,
                            const std::vector<Dependence>& deps,
                            const SearchOptions& options) {
  SearchResult result;
  for (const Dependence& dep : deps) {
    if (spaces.count(dep.src_stmt) == 0 || spaces.count(dep.tgt_stmt) == 0) {
      throw std::invalid_argument("dependence '" + dep.name +
                                  "' references an unknown statement");
    }
  }

  std::vector<std::string> stmts;
  std::map<std::string, std::vector<AffineExpr>> cands;
  for (const auto& [name, space] : spaces) {
    stmts.push_back(name);
    cands[name] = candidates(space, options);
  }

  std::map<std::string, std::vector<AffineExpr>> chosen;  // per level
  std::vector<const Dependence*> active;
  for (const Dependence& dep : deps) {
    active.push_back(&dep);
  }

  for (int level = 0; level < options.max_levels && !active.empty();
       ++level) {
    LevelChoice best;
    std::map<std::string, AffineExpr> current;

    // Depth-first joint assignment over statements with weak-satisfaction
    // pruning as soon as both endpoints of a dependence are fixed.
    std::function<void(std::size_t)> assign = [&](std::size_t s) {
      if (s == stmts.size()) {
        int strong = 0;
        for (const Dependence* dep : active) {
          if (strongly_satisfies(*dep, current.at(dep->src_stmt),
                                 current.at(dep->tgt_stmt))) {
            ++strong;
          }
        }
        if (strong > best.strong_count) {
          best.strong_count = strong;
          best.theta = current;
        }
        return;
      }
      const std::string& stmt = stmts[s];
      for (const AffineExpr& cand : cands.at(stmt)) {
        current[stmt] = cand;
        bool feasible = true;
        for (const Dependence* dep : active) {
          const bool src_fixed = current.count(dep->src_stmt) != 0;
          const bool tgt_fixed = current.count(dep->tgt_stmt) != 0;
          // Only check once both sides are decided, and only when this
          // statement participates (others were checked earlier).
          if (src_fixed && tgt_fixed &&
              (dep->src_stmt == stmt || dep->tgt_stmt == stmt)) {
            if (!weakly_satisfies(*dep, current.at(dep->src_stmt),
                                  current.at(dep->tgt_stmt))) {
              feasible = false;
              break;
            }
          }
        }
        if (feasible) {
          assign(s + 1);
        }
        current.erase(stmt);
      }
    };
    assign(0);

    if (best.strong_count <= 0) {
      return result;  // no progress possible: search failed
    }
    for (const auto& [stmt, theta] : best.theta) {
      chosen[stmt].push_back(theta);
    }
    std::vector<const Dependence*> still_active;
    for (const Dependence* dep : active) {
      if (!strongly_satisfies(*dep, best.theta.at(dep->src_stmt),
                              best.theta.at(dep->tgt_stmt))) {
        still_active.push_back(dep);
      }
    }
    active = std::move(still_active);
  }

  if (!active.empty()) {
    return result;  // ran out of levels
  }
  if (chosen.empty()) {
    // No dependences at all: a single constant level orders everything.
    for (const auto& [name, space] : spaces) {
      chosen[name].push_back(AffineExpr(space.size()));
    }
  }

  for (const auto& [name, space] : spaces) {
    result.schedules[name] = StmtSchedule{space, chosen[name]};
  }
  result.levels = static_cast<int>(chosen.begin()->second.size());
  // Certify with the reference checker (belt and braces: the greedy
  // construction already implies legality level by level).
  for (const Dependence& dep : deps) {
    const auto verdict = check_dependence(dep, result.schedules.at(dep.src_stmt),
                                          result.schedules.at(dep.tgt_stmt));
    if (!verdict.legal) {
      return SearchResult{};  // should not happen; fail closed
    }
  }
  result.found = true;
  return result;
}

}  // namespace rri::poly
