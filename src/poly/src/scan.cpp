#include "rri/poly/scan.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>

namespace rri::poly {
namespace {

using Row = std::vector<std::int64_t>;  // coeffs..., constant

std::vector<Row> to_rows(const ConstraintSystem& cs) {
  const auto dims = static_cast<std::size_t>(cs.dims());
  std::vector<Row> rows;
  for (const Constraint& c : cs.constraints()) {
    Row row(dims + 1);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = c.expr.coeff(static_cast<int>(d));
    }
    row[dims] = c.expr.constant_term();
    rows.push_back(row);
    if (c.equality) {
      Row neg(dims + 1);
      for (std::size_t i = 0; i <= dims; ++i) {
        neg[i] = -row[i];
      }
      rows.push_back(std::move(neg));
    }
  }
  return rows;
}

void normalize(Row& row) {
  std::int64_t g = 0;
  for (const std::int64_t v : row) {
    g = std::gcd(g, v < 0 ? -v : v);
  }
  if (g > 1) {
    for (std::int64_t& v : row) {
      v /= g;
    }
  }
}

/// Eliminate dimension d (Fourier-Motzkin) from the row set.
std::vector<Row> eliminate(const std::vector<Row>& rows, std::size_t d) {
  std::vector<Row> pos;
  std::vector<Row> neg;
  std::set<Row> rest;
  for (const Row& row : rows) {
    if (row[d] > 0) {
      pos.push_back(row);
    } else if (row[d] < 0) {
      neg.push_back(row);
    } else {
      rest.insert(row);
    }
  }
  for (const Row& p : pos) {
    for (const Row& q : neg) {
      const std::int64_t a = p[d];
      const std::int64_t b = -q[d];
      Row combined(p.size());
      for (std::size_t i = 0; i < p.size(); ++i) {
        combined[i] = b * p[i] + a * q[i];
      }
      combined[d] = 0;
      normalize(combined);
      rest.insert(std::move(combined));
    }
  }
  return {rest.begin(), rest.end()};
}

/// Render sum(row[outer dims] * name) + const as a C expression; the row
/// must have zero coefficients at and beyond `limit`.
std::string c_partial(const Row& row, const Space& space, std::size_t limit) {
  std::ostringstream out;
  bool first = true;
  for (std::size_t d = 0; d < limit; ++d) {
    const std::int64_t c = row[d];
    if (c == 0) {
      continue;
    }
    if (first) {
      if (c < 0) {
        out << "-";
      }
      first = false;
    } else {
      out << (c > 0 ? " + " : " - ");
    }
    const std::int64_t mag = c < 0 ? -c : c;
    if (mag != 1) {
      out << mag << "*";
    }
    out << space.names()[d];
  }
  const std::int64_t k = row[row.size() - 1];
  if (k != 0 || first) {
    if (first) {
      out << k;
    } else {
      out << (k > 0 ? " + " : " - ") << (k > 0 ? k : -k);
    }
  }
  return out.str();
}

/// Exact integer ceil((expr)/a) for a > 0 as a C expression.
std::string ceil_div(const std::string& expr, std::int64_t a) {
  if (a == 1) {
    return expr;
  }
  std::ostringstream out;
  out << "(((" << expr << ") >= 0) ? ((" << expr << ") + " << a - 1 << ") / "
      << a << " : -((-(" << expr << ")) / " << a << "))";
  return out.str();
}

/// Exact integer floor((expr)/a) for a > 0 as a C expression.
std::string floor_div(const std::string& expr, std::int64_t a) {
  if (a == 1) {
    return expr;
  }
  std::ostringstream out;
  out << "(((" << expr << ") >= 0) ? (" << expr << ") / " << a << " : -((-("
      << expr << ") + " << a - 1 << ") / " << a << "))";
  return out.str();
}

std::string combine(const std::vector<std::string>& exprs, const char* fn) {
  if (exprs.size() == 1) {
    return exprs.front();
  }
  std::ostringstream out;
  out << fn << "<long long>({";
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    out << (i ? ", " : "") << exprs[i];
  }
  out << "})";
  return out.str();
}

}  // namespace

std::string LoopNest::to_source(const std::string& body,
                                const std::string& indent) const {
  std::ostringstream out;
  std::string pad = indent;
  if (!guard.empty()) {
    out << pad << "if (" << guard << ") {\n";
    pad += "  ";
  }
  for (const LoopBound& loop : loops) {
    out << pad << "for (long long " << loop.dim << " = " << loop.lower
        << "; " << loop.dim << " <= " << loop.upper << "; ++" << loop.dim
        << ") {\n";
    pad += "  ";
  }
  out << pad << body << "\n";
  for (std::size_t k = 0; k < loops.size(); ++k) {
    pad.resize(pad.size() - 2);
    out << pad << "}\n";
  }
  if (!guard.empty()) {
    pad.resize(pad.size() - 2);
    out << pad << "}\n";
  }
  return out.str();
}

LoopNest scan_loops(const ConstraintSystem& system, int fixed_prefix) {
  const int dims = system.dims();
  if (fixed_prefix < 0 || fixed_prefix > dims) {
    throw std::invalid_argument("scan_loops: bad fixed_prefix");
  }
  // Projections: proj[d] has dims d+1.. eliminated (innermost first).
  std::vector<std::vector<Row>> proj(static_cast<std::size_t>(dims) + 1);
  proj[static_cast<std::size_t>(dims)] = to_rows(system);
  for (int d = dims - 1; d >= fixed_prefix; --d) {
    proj[static_cast<std::size_t>(d)] =
        eliminate(proj[static_cast<std::size_t>(d) + 1],
                  static_cast<std::size_t>(d));
  }

  LoopNest nest;
  for (int d = fixed_prefix; d < dims; ++d) {
    // Bounds for x_d come from the projection that still contains it:
    // proj[d+1] (dims deeper than d eliminated).
    const auto& rows = proj[static_cast<std::size_t>(d) + 1];
    std::vector<std::string> lowers;
    std::vector<std::string> uppers;
    for (const Row& row : rows) {
      const std::int64_t a = row[static_cast<std::size_t>(d)];
      if (a == 0) {
        continue;
      }
      // a*x + e >= 0 with e over outer dims only.
      Row e = row;
      e[static_cast<std::size_t>(d)] = 0;
      const std::string e_text =
          c_partial(e, system.space(), static_cast<std::size_t>(d));
      if (a > 0) {
        // x >= ceil(-e / a)
        lowers.push_back(ceil_div("-(" + e_text + ")", a));
      } else {
        // x <= floor(e / -a)
        uppers.push_back(floor_div(e_text, -a));
      }
    }
    if (lowers.empty() || uppers.empty()) {
      throw std::invalid_argument(
          "scan_loops: dimension '" +
          system.space().names()[static_cast<std::size_t>(d)] +
          "' is unbounded");
    }
    nest.loops.push_back(
        LoopBound{system.space().names()[static_cast<std::size_t>(d)],
                  combine(lowers, "std::max"), combine(uppers, "std::min")});
  }
  // Constraints living entirely in the fixed prefix cannot be enforced by
  // any loop: surface them as a guard (usually parameter preconditions).
  std::ostringstream guard;
  bool have_guard = false;
  for (const Row& row : proj[static_cast<std::size_t>(fixed_prefix)]) {
    bool prefix_only = true;
    for (int d = fixed_prefix; d < dims; ++d) {
      if (row[static_cast<std::size_t>(d)] != 0) {
        prefix_only = false;
        break;
      }
    }
    if (prefix_only) {
      if (have_guard) {
        guard << " && ";
      }
      guard << "(("
            << c_partial(row, system.space(),
                         static_cast<std::size_t>(fixed_prefix))
            << ") >= 0)";
      have_guard = true;
    }
  }
  if (have_guard) {
    nest.guard = guard.str();
  }
  return nest;
}

}  // namespace rri::poly
