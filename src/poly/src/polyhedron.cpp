#include "rri/poly/polyhedron.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace rri::poly {

bool ConstraintSystem::contains(std::span<const std::int64_t> point) const {
  for (const Constraint& c : constraints_) {
    const std::int64_t v = c.expr.eval(point);
    if (c.equality ? (v != 0) : (v < 0)) {
      return false;
    }
  }
  return true;
}

namespace {

/// A row is (coeffs..., constant) representing sum(coeff*x) + const >= 0.
using Row = std::vector<std::int64_t>;

/// Divide a row by the GCD of its entries to slow coefficient growth.
void normalize(Row& row) {
  std::int64_t g = 0;
  for (const std::int64_t v : row) {
    g = std::gcd(g, v < 0 ? -v : v);
  }
  if (g > 1) {
    for (std::int64_t& v : row) {
      v /= g;
    }
  }
}

/// a*b with overflow detection via __int128.
std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  const __int128 p = static_cast<__int128>(a) * static_cast<__int128>(b);
  if (p > INT64_MAX || p < INT64_MIN) {
    throw std::overflow_error("Fourier-Motzkin coefficient overflow");
  }
  return static_cast<std::int64_t>(p);
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  const __int128 s = static_cast<__int128>(a) + static_cast<__int128>(b);
  if (s > INT64_MAX || s < INT64_MIN) {
    throw std::overflow_error("Fourier-Motzkin coefficient overflow");
  }
  return static_cast<std::int64_t>(s);
}

/// Combine pos (coeff a > 0 on dim d) and neg (coeff -b < 0) eliminating
/// d: b * pos + a * neg.
Row combine(const Row& pos, const Row& neg, std::size_t d) {
  const std::int64_t a = pos[d];
  const std::int64_t b = -neg[d];
  Row out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out[i] = checked_add(checked_mul(b, pos[i]), checked_mul(a, neg[i]));
  }
  out[d] = 0;
  normalize(out);
  return out;
}

}  // namespace

bool ConstraintSystem::empty_rational() const {
  const auto ndims = static_cast<std::size_t>(dims());
  // Inequality rows only: each equality contributes two inequalities.
  std::set<Row> rows;
  for (const Constraint& c : constraints_) {
    Row row(ndims + 1);
    for (std::size_t d = 0; d < ndims; ++d) {
      row[d] = c.expr.coeff(static_cast<int>(d));
    }
    row[ndims] = c.expr.constant_term();
    normalize(row);
    rows.insert(row);
    if (c.equality) {
      Row negated(ndims + 1);
      for (std::size_t i = 0; i <= ndims; ++i) {
        negated[i] = -row[i];
      }
      rows.insert(negated);
    }
  }

  for (std::size_t d = 0; d < ndims; ++d) {
    std::vector<Row> pos;
    std::vector<Row> neg;
    std::set<Row> rest;
    for (const Row& row : rows) {
      if (row[d] > 0) {
        pos.push_back(row);
      } else if (row[d] < 0) {
        neg.push_back(row);
      } else {
        rest.insert(row);
      }
    }
    for (const Row& p : pos) {
      for (const Row& q : neg) {
        Row c = combine(p, q, d);
        // Constant-only contradictions can be detected eagerly.
        bool all_zero = true;
        for (std::size_t i = 0; i < ndims; ++i) {
          if (c[i] != 0) {
            all_zero = false;
            break;
          }
        }
        if (all_zero && c[ndims] < 0) {
          return true;
        }
        if (!all_zero) {
          rest.insert(std::move(c));
        }
      }
    }
    rows = std::move(rest);
  }

  // All dimensions eliminated: rows are pure constants c >= 0.
  for (const Row& row : rows) {
    if (row[ndims] < 0) {
      return true;
    }
  }
  return false;
}

std::vector<std::vector<std::int64_t>> ConstraintSystem::integer_points_in_box(
    std::int64_t lo, std::int64_t hi, std::size_t limit) const {
  std::vector<std::vector<std::int64_t>> found;
  std::vector<std::int64_t> point(static_cast<std::size_t>(dims()), lo);
  if (dims() == 0) {
    if (contains(point)) {
      found.push_back(point);
    }
    return found;
  }
  while (true) {
    if (contains(point)) {
      found.push_back(point);
      if (found.size() >= limit) {
        return found;
      }
    }
    // Odometer increment.
    std::size_t d = 0;
    while (d < point.size()) {
      if (++point[d] <= hi) {
        break;
      }
      point[d] = lo;
      ++d;
    }
    if (d == point.size()) {
      return found;
    }
  }
}

}  // namespace rri::poly
