#include "rri/poly/schedule.hpp"

#include <stdexcept>

namespace rri::poly {

namespace {

/// θ components of one statement composed with the dependence's
/// coordinate map, yielding expressions over the dependence space.
std::vector<AffineExpr> composed_times(const StmtSchedule& schedule,
                                       const std::vector<AffineExpr>& coords) {
  if (static_cast<int>(coords.size()) != schedule.domain.size()) {
    throw std::invalid_argument(
        "dependence coordinate map arity does not match statement domain");
  }
  std::vector<AffineExpr> out;
  out.reserve(schedule.time.size());
  for (const AffineExpr& t : schedule.time) {
    out.push_back(t.substitute(coords));
  }
  return out;
}

}  // namespace

ConstraintSystem violation_system(const Dependence& dep,
                                  const StmtSchedule& src_schedule,
                                  const StmtSchedule& tgt_schedule,
                                  int level) {
  if (src_schedule.levels() != tgt_schedule.levels()) {
    throw std::invalid_argument("schedules must have equal level counts");
  }
  const int levels = src_schedule.levels();
  if (level < 0 || level > levels) {
    throw std::out_of_range("violation level out of range");
  }
  const auto src_t = composed_times(src_schedule, dep.src_coords);
  const auto tgt_t = composed_times(tgt_schedule, dep.tgt_coords);

  ConstraintSystem system = dep.domain;
  for (int r = 0; r < std::min(level, levels); ++r) {
    system.add_eq(tgt_t[static_cast<std::size_t>(r)],
                  src_t[static_cast<std::size_t>(r)]);
  }
  if (level < levels) {
    system.add_lt(tgt_t[static_cast<std::size_t>(level)],
                  src_t[static_cast<std::size_t>(level)]);
  }
  return system;
}

LegalityResult check_dependence(const Dependence& dep,
                                const StmtSchedule& src_schedule,
                                const StmtSchedule& tgt_schedule) {
  const int levels = src_schedule.levels();
  for (int level = 0; level <= levels; ++level) {
    const ConstraintSystem violation =
        violation_system(dep, src_schedule, tgt_schedule, level);
    if (!violation.empty_rational()) {
      return {false, level};
    }
  }
  return {true, -1};
}

}  // namespace rri::poly
