#ifndef RRI_POLY_POLYHEDRON_HPP
#define RRI_POLY_POLYHEDRON_HPP

/// \file polyhedron.hpp
/// Conjunctions of affine constraints and a Fourier-Motzkin emptiness
/// test. Emptiness is decided over the rationals, which is sound for
/// proving legality (an empty rational set has no integer points); a
/// rationally-non-empty violation set is additionally cross-checked by
/// integer sampling in the tests.

#include <optional>

#include "rri/poly/affine.hpp"

namespace rri::poly {

/// One constraint: expr >= 0, or expr == 0 when `equality`.
struct Constraint {
  AffineExpr expr;
  bool equality = false;
};

class ConstraintSystem {
 public:
  explicit ConstraintSystem(Space space) : space_(std::move(space)) {}

  const Space& space() const noexcept { return space_; }
  int dims() const noexcept { return space_.size(); }
  const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

  /// expr >= 0
  void add_ge0(AffineExpr expr) { constraints_.push_back({std::move(expr), false}); }
  /// expr == 0
  void add_eq0(AffineExpr expr) { constraints_.push_back({std::move(expr), true}); }
  /// lhs >= rhs
  void add_ge(const AffineExpr& lhs, const AffineExpr& rhs) {
    add_ge0(lhs - rhs);
  }
  /// lhs <= rhs
  void add_le(const AffineExpr& lhs, const AffineExpr& rhs) {
    add_ge0(rhs - lhs);
  }
  /// lhs < rhs  (integer semantics: lhs <= rhs - 1)
  void add_lt(const AffineExpr& lhs, const AffineExpr& rhs) {
    add_ge0(rhs - lhs - 1);
  }
  /// lhs == rhs
  void add_eq(const AffineExpr& lhs, const AffineExpr& rhs) {
    add_eq0(lhs - rhs);
  }

  /// True when the point satisfies every constraint.
  bool contains(std::span<const std::int64_t> point) const;

  /// Rational emptiness by Fourier-Motzkin elimination of every
  /// dimension. Throws std::overflow_error if coefficient growth exceeds
  /// 64-bit range even after GCD normalization (does not happen for the
  /// BPMax systems).
  bool empty_rational() const;

  /// Enumerate integer points with every coordinate in [lo, hi], up to
  /// `limit` points (cross-check for the FM result on small boxes).
  std::vector<std::vector<std::int64_t>> integer_points_in_box(
      std::int64_t lo, std::int64_t hi, std::size_t limit) const;

 private:
  Space space_;
  std::vector<Constraint> constraints_;
};

}  // namespace rri::poly

#endif  // RRI_POLY_POLYHEDRON_HPP
