#ifndef RRI_POLY_SCHEDULE_HPP
#define RRI_POLY_SCHEDULE_HPP

/// \file schedule.hpp
/// Multi-dimensional affine schedules (Feautrier-style) and the
/// dependence-legality check: a schedule assignment is legal for a
/// dependence src -> tgt when θ_tgt(x) ≻_lex θ_src(h(x)) for every point
/// x of the dependence polyhedron. The check builds, per lexicographic
/// level, the polyhedron of violating points and proves each empty.

#include <string>

#include "rri/poly/polyhedron.hpp"

namespace rri::poly {

/// Schedule of one statement: `time[t]` are affine expressions over the
/// statement's domain space (parameters included as leading dimensions).
struct StmtSchedule {
  Space domain;
  std::vector<AffineExpr> time;

  int levels() const noexcept { return static_cast<int>(time.size()); }
};

/// One dependence: for every point of `domain` (a polyhedron over
/// `space`), the source-statement instance at coordinates
/// `src_coords(point)` must execute before the target instance at
/// `tgt_coords(point)`. Statements are identified by name so catalogs can
/// bind schedules to them.
struct Dependence {
  std::string name;        ///< e.g. "R0 reads F(i1,k1,i2,k2)"
  std::string src_stmt;    ///< e.g. "F"
  std::string tgt_stmt;    ///< e.g. "R0"
  ConstraintSystem domain; ///< over `space()` == domain.space()
  std::vector<AffineExpr> src_coords;  ///< into src stmt's domain order
  std::vector<AffineExpr> tgt_coords;  ///< into tgt stmt's domain order

  const Space& space() const noexcept { return domain.space(); }
};

/// Outcome of checking one dependence under one schedule assignment.
struct LegalityResult {
  bool legal = false;
  /// When illegal: the lexicographic level at which a violation exists
  /// (levels() meaning "all components equal" — the dependence is not
  /// strictly ordered). -1 when legal.
  int violation_level = -1;
};

/// Check θ_tgt ≻_lex θ_src over the dependence domain. The two schedules
/// must have the same number of levels.
LegalityResult check_dependence(const Dependence& dep,
                                const StmtSchedule& src_schedule,
                                const StmtSchedule& tgt_schedule);

/// The violation polyhedron at one lexicographic level (exposed for tests
/// that cross-check FM emptiness against integer sampling). For
/// level < levels(): the first `level` components are equal and
/// θ_tgt[level] <= θ_src[level] - 1. For level == levels(): all
/// components equal (the dependence would not be strictly ordered).
/// The schedule is legal iff every one of these systems is empty.
ConstraintSystem violation_system(const Dependence& dep,
                                  const StmtSchedule& src_schedule,
                                  const StmtSchedule& tgt_schedule,
                                  int level);

}  // namespace rri::poly

#endif  // RRI_POLY_SCHEDULE_HPP
