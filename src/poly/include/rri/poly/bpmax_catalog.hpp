#ifndef RRI_POLY_BPMAX_CATALOG_HPP
#define RRI_POLY_BPMAX_CATALOG_HPP

/// \file bpmax_catalog.hpp
/// The BPMax program as polyhedral data: its statements, the dependence
/// relations of Fig. 6, and the paper's published multi-dimensional
/// affine schedules (Tables I-IV; Table V's subsystem split reuses the
/// hybrid root schedule) — transcribed so check_dependence can certify
/// every one of them, and so deliberately-corrupted variants are caught.
///
/// Statements and domains (0-based, M/N are the strand lengths):
///   F  (i1,j1,i2,j2)        the table update
///   R0 (i1,j1,i2,j2,k1,k2)  double max-plus body
///   R1 (i1,j1,i2,j2,k2)     S2(i2,k2)   + F(i1,j1,k2+1,j2)
///   R2 (i1,j1,i2,j2,k2)     F(i1,j1,i2,k2) + S2(k2+1,j2)
///   R3 (i1,j1,i2,j2,k1)     F(i1,k1,i2,j2) + S1(k1+1,j1)
///   R4 (i1,j1,i2,j2,k1)     S1(i1,k1)   + F(k1+1,j1,i2,j2)
/// Every domain space carries the parameters (M, N) as leading
/// dimensions. Reduction-accumulator initialization statements (the
/// second rows of the paper's tables) are not modeled: our kernels fold
/// initialization into the -inf table fill.

#include <map>

#include "rri/poly/schedule.hpp"

namespace rri::poly {

/// Domain space of a statement by name ("F", "R0", ..., "R4").
Space statement_space(const std::string& stmt);

/// The 13 dependence relations of the full BPMax recurrence: the two
/// pair cases (c1/c2), and for each reduction both its reads of F and
/// the use of its result by F.
std::vector<Dependence> bpmax_dependences();

/// The 3 dependence relations of the standalone double max-plus problem
/// (R0's two reads and F's use of R0).
std::vector<Dependence> dmp_dependences();

/// A named assignment of schedules to statements.
struct ScheduleSet {
  std::string name;
  std::string description;
  /// Whether the innermost loop dimension is the vectorizable j2 stream
  /// (false when k2 is innermost — "auto-vectorization is prohibited if
  /// k2 is the innermost loop iteration").
  bool vectorizable = true;
  std::map<std::string, StmtSchedule> by_stmt;
};

/// Full-BPMax schedule sets: the original program order plus the paper's
/// Table II (fine), Table III (coarse) and Table IV (hybrid).
std::vector<ScheduleSet> bpmax_schedule_catalog();

/// Double max-plus schedule sets (Table I family): the original order,
/// the three legal vectorizable permutations the paper discusses, a
/// legal-but-unvectorizable k2-innermost permutation, and one
/// deliberately illegal set (negative control for the checker).
std::vector<ScheduleSet> dmp_schedule_catalog();

struct CatalogVerdict {
  std::string schedule_set;
  std::string dependence;
  bool legal = false;
  int violation_level = -1;
};

/// Check every dependence of `deps` under `set`. Dependences touching a
/// statement the set lacks are skipped.
std::vector<CatalogVerdict> verify_schedule_set(
    const ScheduleSet& set, const std::vector<Dependence>& deps);

bool all_legal(const std::vector<CatalogVerdict>& verdicts);

}  // namespace rri::poly

#endif  // RRI_POLY_BPMAX_CATALOG_HPP
