#ifndef RRI_POLY_SEARCH_HPP
#define RRI_POLY_SEARCH_HPP

/// \file search.hpp
/// Automatic multi-dimensional schedule search in the spirit of
/// Feautrier's greedy algorithm: build the schedule level by level,
/// at each level choosing an affine function (from a small-coefficient
/// candidate space) that weakly satisfies every still-active dependence
/// and strongly satisfies as many as possible; strongly-satisfied
/// dependences drop out and the next level handles the rest. This is the
/// "explore various schedules" half of the AlphaZ workflow, automated —
/// the found schedules are certified by the same legality checker that
/// validates the paper's hand-written tables.
///
/// The candidate space is deliberately tiny (coefficients in {-1, 0, 1}
/// over the statement's index dimensions plus small constants), which is
/// exactly the space the paper's schedules live in.

#include <functional>
#include <map>

#include "rri/poly/schedule.hpp"

namespace rri::poly {

struct SearchOptions {
  int max_levels = 8;          ///< give up beyond this many dimensions
  int max_active_dims = 3;     ///< nonzero coefficients per level function
  std::int64_t coeff_min = -1;
  std::int64_t coeff_max = 1;
  /// Allow the structure parameters (leading dims by convention) to
  /// appear in schedule functions (the hybrid schedule needs "M").
  bool allow_parameters = false;
  int parameter_dims = 2;      ///< how many leading dims are parameters
};

struct SearchResult {
  bool found = false;
  /// One schedule per statement, same level count each, certified legal
  /// against every input dependence.
  std::map<std::string, StmtSchedule> schedules;
  int levels = 0;
};

/// Search schedules for the statements named in `spaces` subject to
/// `deps` (every dependence's src/tgt must appear in `spaces`).
SearchResult find_schedules(
    const std::map<std::string, Space>& spaces,
    const std::vector<Dependence>& deps,
    const SearchOptions& options = {});

}  // namespace rri::poly

#endif  // RRI_POLY_SEARCH_HPP
