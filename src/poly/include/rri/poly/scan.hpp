#ifndef RRI_POLY_SCAN_HPP
#define RRI_POLY_SCAN_HPP

/// \file scan.hpp
/// Polyhedron scanning: generate loop nests that enumerate exactly the
/// integer points of a constraint system in a chosen dimension order —
/// the code-generation core of AlphaZ's generateScheduleC. Bounds come
/// from Fourier-Motzkin projection: eliminating the dimensions inner to
/// d leaves constraints in d and the outer dimensions only, which become
/// d's lower/upper bound expressions (max of lowers / min of uppers,
/// with exact ceiling/floor division for non-unit coefficients).
///
/// Tests compile the generated nests with the host compiler and check
/// they visit exactly integer_points_in_box's points, in lexicographic
/// order.

#include <string>
#include <vector>

#include "rri/poly/polyhedron.hpp"

namespace rri::poly {

/// One loop of a generated nest.
struct LoopBound {
  std::string dim;    ///< loop variable name
  std::string lower;  ///< C expression (may reference outer dims)
  std::string upper;  ///< C expression, inclusive
};

struct LoopNest {
  /// Loops outermost first, in the requested order.
  std::vector<LoopBound> loops;
  /// Loop-invariant precondition (conjunction, C syntax) over the fixed
  /// prefix dimensions: constraints no loop can enforce (typically
  /// parameter preconditions like M >= 1). Wraps the whole nest; "" when
  /// none exist.
  std::string guard;

  /// Render as C++ source: nested for loops around `body` (a statement
  /// using the dimension names), guarded if necessary.
  std::string to_source(const std::string& body,
                        const std::string& indent = "") const;
};

/// Build the nest scanning `system` with dimensions iterated in their
/// declared order (outermost = dimension 0). The `fixed_prefix` first
/// dimensions are treated as externally-defined variables (parameters)
/// and get no loops. Throws std::invalid_argument if some dimension is
/// unbounded (no finite lower or upper bound exists).
LoopNest scan_loops(const ConstraintSystem& system, int fixed_prefix = 0);

}  // namespace rri::poly

#endif  // RRI_POLY_SCAN_HPP
