#ifndef RRI_POLY_AFFINE_HPP
#define RRI_POLY_AFFINE_HPP

/// \file affine.hpp
/// Integer affine expressions over a named dimension space — the
/// vocabulary of the polyhedral schedule calculus. This module plays the
/// role AlphaZ plays in the paper: it represents the multi-dimensional
/// affine schedules of Tables I-V and lets us *machine-check* their
/// legality against the BPMax dependences (AlphaZ itself trusts the user:
/// "it is the responsibility of the user to ensure the transformations
/// are valid").

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace rri::poly {

/// An ordered list of dimension names, e.g. {"M","N","i1","j1","i2","j2"}.
/// By convention in this library the structure parameters M and N come
/// first in every space.
class Space {
 public:
  Space() = default;  ///< empty (zero-dimensional) space

  explicit Space(std::vector<std::string> names) : names_(std::move(names)) {}

  int size() const noexcept { return static_cast<int>(names_.size()); }

  const std::vector<std::string>& names() const noexcept { return names_; }

  /// Index of a name; throws std::out_of_range if absent.
  int index(const std::string& name) const {
    for (int d = 0; d < size(); ++d) {
      if (names_[static_cast<std::size_t>(d)] == name) {
        return d;
      }
    }
    throw std::out_of_range("Space has no dimension named '" + name + "'");
  }

  friend bool operator==(const Space&, const Space&) = default;

 private:
  std::vector<std::string> names_;
};

/// sum(coeff[d] * x_d) + constant with 64-bit integer coefficients.
class AffineExpr {
 public:
  AffineExpr() = default;

  explicit AffineExpr(int dims)
      : coeffs_(static_cast<std::size_t>(dims), 0) {}

  static AffineExpr constant(int dims, std::int64_t c) {
    AffineExpr e(dims);
    e.const_ = c;
    return e;
  }

  static AffineExpr variable(int dims, int d, std::int64_t coeff = 1) {
    AffineExpr e(dims);
    e.coeffs_[static_cast<std::size_t>(d)] = coeff;
    return e;
  }

  int dims() const noexcept { return static_cast<int>(coeffs_.size()); }

  std::int64_t coeff(int d) const { return coeffs_[static_cast<std::size_t>(d)]; }
  std::int64_t& coeff(int d) { return coeffs_[static_cast<std::size_t>(d)]; }
  std::int64_t constant_term() const noexcept { return const_; }
  std::int64_t& constant_term() noexcept { return const_; }

  bool is_constant() const noexcept {
    for (const std::int64_t c : coeffs_) {
      if (c != 0) {
        return false;
      }
    }
    return true;
  }

  std::int64_t eval(std::span<const std::int64_t> point) const {
    std::int64_t v = const_;
    for (std::size_t d = 0; d < coeffs_.size(); ++d) {
      v += coeffs_[d] * point[d];
    }
    return v;
  }

  AffineExpr operator+(const AffineExpr& o) const {
    AffineExpr r = *this;
    for (int d = 0; d < dims(); ++d) {
      r.coeff(d) += o.coeff(d);
    }
    r.const_ += o.const_;
    return r;
  }

  AffineExpr operator-(const AffineExpr& o) const {
    AffineExpr r = *this;
    for (int d = 0; d < dims(); ++d) {
      r.coeff(d) -= o.coeff(d);
    }
    r.const_ -= o.const_;
    return r;
  }

  AffineExpr operator-() const {
    AffineExpr r = *this;
    for (auto& c : r.coeffs_) {
      c = -c;
    }
    r.const_ = -r.const_;
    return r;
  }

  AffineExpr operator*(std::int64_t k) const {
    AffineExpr r = *this;
    for (auto& c : r.coeffs_) {
      c *= k;
    }
    r.const_ *= k;
    return r;
  }

  AffineExpr operator+(std::int64_t k) const {
    AffineExpr r = *this;
    r.const_ += k;
    return r;
  }

  AffineExpr operator-(std::int64_t k) const { return *this + (-k); }

  /// Substitute: this expression is over an "old" space; `map[d]` gives,
  /// for each old dimension d, its value as an expression over a "new"
  /// space. Returns the composed expression over the new space.
  AffineExpr substitute(const std::vector<AffineExpr>& map) const {
    if (static_cast<int>(map.size()) != dims()) {
      throw std::invalid_argument("substitute: map arity mismatch");
    }
    const int new_dims = map.empty() ? 0 : map.front().dims();
    AffineExpr r = AffineExpr::constant(new_dims, const_);
    for (int d = 0; d < dims(); ++d) {
      if (coeff(d) != 0) {
        r = r + map[static_cast<std::size_t>(d)] * coeff(d);
      }
    }
    return r;
  }

  std::string to_string(const Space& space) const;

  friend bool operator==(const AffineExpr&, const AffineExpr&) = default;

 private:
  std::vector<std::int64_t> coeffs_;
  std::int64_t const_ = 0;
};

/// Convenience builder bound to a space: `b("i1") - b("j1") + 3`.
class ExprBuilder {
 public:
  explicit ExprBuilder(const Space& space) : space_(&space) {}

  AffineExpr operator()(const std::string& name) const {
    return AffineExpr::variable(space_->size(), space_->index(name));
  }

  AffineExpr constant(std::int64_t c) const {
    return AffineExpr::constant(space_->size(), c);
  }

 private:
  const Space* space_;
};

}  // namespace rri::poly

#endif  // RRI_POLY_AFFINE_HPP
