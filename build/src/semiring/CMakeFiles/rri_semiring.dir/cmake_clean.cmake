file(REMOVE_RECURSE
  "CMakeFiles/rri_semiring.dir/src/streaming.cpp.o"
  "CMakeFiles/rri_semiring.dir/src/streaming.cpp.o.d"
  "librri_semiring.a"
  "librri_semiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rri_semiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
