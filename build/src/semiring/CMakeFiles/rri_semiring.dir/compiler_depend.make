# Empty compiler generated dependencies file for rri_semiring.
# This may be replaced when dependencies are built.
