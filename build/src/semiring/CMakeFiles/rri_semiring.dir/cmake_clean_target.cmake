file(REMOVE_RECURSE
  "librri_semiring.a"
)
