
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alpha/src/analysis.cpp" "src/alpha/CMakeFiles/rri_alpha.dir/src/analysis.cpp.o" "gcc" "src/alpha/CMakeFiles/rri_alpha.dir/src/analysis.cpp.o.d"
  "/root/repo/src/alpha/src/ast.cpp" "src/alpha/CMakeFiles/rri_alpha.dir/src/ast.cpp.o" "gcc" "src/alpha/CMakeFiles/rri_alpha.dir/src/ast.cpp.o.d"
  "/root/repo/src/alpha/src/codegen.cpp" "src/alpha/CMakeFiles/rri_alpha.dir/src/codegen.cpp.o" "gcc" "src/alpha/CMakeFiles/rri_alpha.dir/src/codegen.cpp.o.d"
  "/root/repo/src/alpha/src/eval.cpp" "src/alpha/CMakeFiles/rri_alpha.dir/src/eval.cpp.o" "gcc" "src/alpha/CMakeFiles/rri_alpha.dir/src/eval.cpp.o.d"
  "/root/repo/src/alpha/src/lexer.cpp" "src/alpha/CMakeFiles/rri_alpha.dir/src/lexer.cpp.o" "gcc" "src/alpha/CMakeFiles/rri_alpha.dir/src/lexer.cpp.o.d"
  "/root/repo/src/alpha/src/parser.cpp" "src/alpha/CMakeFiles/rri_alpha.dir/src/parser.cpp.o" "gcc" "src/alpha/CMakeFiles/rri_alpha.dir/src/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poly/CMakeFiles/rri_poly.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
