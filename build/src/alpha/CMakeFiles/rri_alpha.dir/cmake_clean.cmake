file(REMOVE_RECURSE
  "CMakeFiles/rri_alpha.dir/src/analysis.cpp.o"
  "CMakeFiles/rri_alpha.dir/src/analysis.cpp.o.d"
  "CMakeFiles/rri_alpha.dir/src/ast.cpp.o"
  "CMakeFiles/rri_alpha.dir/src/ast.cpp.o.d"
  "CMakeFiles/rri_alpha.dir/src/codegen.cpp.o"
  "CMakeFiles/rri_alpha.dir/src/codegen.cpp.o.d"
  "CMakeFiles/rri_alpha.dir/src/eval.cpp.o"
  "CMakeFiles/rri_alpha.dir/src/eval.cpp.o.d"
  "CMakeFiles/rri_alpha.dir/src/lexer.cpp.o"
  "CMakeFiles/rri_alpha.dir/src/lexer.cpp.o.d"
  "CMakeFiles/rri_alpha.dir/src/parser.cpp.o"
  "CMakeFiles/rri_alpha.dir/src/parser.cpp.o.d"
  "librri_alpha.a"
  "librri_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rri_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
