file(REMOVE_RECURSE
  "librri_alpha.a"
)
