# Empty compiler generated dependencies file for rri_alpha.
# This may be replaced when dependencies are built.
