file(REMOVE_RECURSE
  "CMakeFiles/rri_rna.dir/src/fasta.cpp.o"
  "CMakeFiles/rri_rna.dir/src/fasta.cpp.o.d"
  "CMakeFiles/rri_rna.dir/src/random.cpp.o"
  "CMakeFiles/rri_rna.dir/src/random.cpp.o.d"
  "CMakeFiles/rri_rna.dir/src/scoring.cpp.o"
  "CMakeFiles/rri_rna.dir/src/scoring.cpp.o.d"
  "CMakeFiles/rri_rna.dir/src/sequence.cpp.o"
  "CMakeFiles/rri_rna.dir/src/sequence.cpp.o.d"
  "librri_rna.a"
  "librri_rna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rri_rna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
