
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rna/src/fasta.cpp" "src/rna/CMakeFiles/rri_rna.dir/src/fasta.cpp.o" "gcc" "src/rna/CMakeFiles/rri_rna.dir/src/fasta.cpp.o.d"
  "/root/repo/src/rna/src/random.cpp" "src/rna/CMakeFiles/rri_rna.dir/src/random.cpp.o" "gcc" "src/rna/CMakeFiles/rri_rna.dir/src/random.cpp.o.d"
  "/root/repo/src/rna/src/scoring.cpp" "src/rna/CMakeFiles/rri_rna.dir/src/scoring.cpp.o" "gcc" "src/rna/CMakeFiles/rri_rna.dir/src/scoring.cpp.o.d"
  "/root/repo/src/rna/src/sequence.cpp" "src/rna/CMakeFiles/rri_rna.dir/src/sequence.cpp.o" "gcc" "src/rna/CMakeFiles/rri_rna.dir/src/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
