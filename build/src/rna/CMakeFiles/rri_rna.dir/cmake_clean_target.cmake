file(REMOVE_RECURSE
  "librri_rna.a"
)
