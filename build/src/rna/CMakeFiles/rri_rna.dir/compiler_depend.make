# Empty compiler generated dependencies file for rri_rna.
# This may be replaced when dependencies are built.
