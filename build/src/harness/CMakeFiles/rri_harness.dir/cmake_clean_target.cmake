file(REMOVE_RECURSE
  "librri_harness.a"
)
