file(REMOVE_RECURSE
  "CMakeFiles/rri_harness.dir/src/args.cpp.o"
  "CMakeFiles/rri_harness.dir/src/args.cpp.o.d"
  "CMakeFiles/rri_harness.dir/src/flops.cpp.o"
  "CMakeFiles/rri_harness.dir/src/flops.cpp.o.d"
  "CMakeFiles/rri_harness.dir/src/report.cpp.o"
  "CMakeFiles/rri_harness.dir/src/report.cpp.o.d"
  "CMakeFiles/rri_harness.dir/src/scaling.cpp.o"
  "CMakeFiles/rri_harness.dir/src/scaling.cpp.o.d"
  "librri_harness.a"
  "librri_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rri_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
