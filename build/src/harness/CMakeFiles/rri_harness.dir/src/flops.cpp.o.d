src/harness/CMakeFiles/rri_harness.dir/src/flops.cpp.o: \
 /root/repo/src/harness/src/flops.cpp /usr/include/stdc-predef.h \
 /root/repo/src/harness/include/rri/harness/flops.hpp
