
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/src/args.cpp" "src/harness/CMakeFiles/rri_harness.dir/src/args.cpp.o" "gcc" "src/harness/CMakeFiles/rri_harness.dir/src/args.cpp.o.d"
  "/root/repo/src/harness/src/flops.cpp" "src/harness/CMakeFiles/rri_harness.dir/src/flops.cpp.o" "gcc" "src/harness/CMakeFiles/rri_harness.dir/src/flops.cpp.o.d"
  "/root/repo/src/harness/src/report.cpp" "src/harness/CMakeFiles/rri_harness.dir/src/report.cpp.o" "gcc" "src/harness/CMakeFiles/rri_harness.dir/src/report.cpp.o.d"
  "/root/repo/src/harness/src/scaling.cpp" "src/harness/CMakeFiles/rri_harness.dir/src/scaling.cpp.o" "gcc" "src/harness/CMakeFiles/rri_harness.dir/src/scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
