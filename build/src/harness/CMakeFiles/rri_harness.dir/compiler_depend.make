# Empty compiler generated dependencies file for rri_harness.
# This may be replaced when dependencies are built.
