
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/bpmax.cpp" "src/core/CMakeFiles/rri_core.dir/src/bpmax.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/bpmax.cpp.o.d"
  "/root/repo/src/core/src/bpmax_baseline.cpp" "src/core/CMakeFiles/rri_core.dir/src/bpmax_baseline.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/bpmax_baseline.cpp.o.d"
  "/root/repo/src/core/src/bpmax_coarse.cpp" "src/core/CMakeFiles/rri_core.dir/src/bpmax_coarse.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/bpmax_coarse.cpp.o.d"
  "/root/repo/src/core/src/bpmax_fine.cpp" "src/core/CMakeFiles/rri_core.dir/src/bpmax_fine.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/bpmax_fine.cpp.o.d"
  "/root/repo/src/core/src/bpmax_hybrid.cpp" "src/core/CMakeFiles/rri_core.dir/src/bpmax_hybrid.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/bpmax_hybrid.cpp.o.d"
  "/root/repo/src/core/src/bpmax_hybrid_tiled.cpp" "src/core/CMakeFiles/rri_core.dir/src/bpmax_hybrid_tiled.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/bpmax_hybrid_tiled.cpp.o.d"
  "/root/repo/src/core/src/bpmax_serial_permuted.cpp" "src/core/CMakeFiles/rri_core.dir/src/bpmax_serial_permuted.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/bpmax_serial_permuted.cpp.o.d"
  "/root/repo/src/core/src/double_maxplus.cpp" "src/core/CMakeFiles/rri_core.dir/src/double_maxplus.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/double_maxplus.cpp.o.d"
  "/root/repo/src/core/src/exhaustive.cpp" "src/core/CMakeFiles/rri_core.dir/src/exhaustive.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/exhaustive.cpp.o.d"
  "/root/repo/src/core/src/serialize.cpp" "src/core/CMakeFiles/rri_core.dir/src/serialize.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/serialize.cpp.o.d"
  "/root/repo/src/core/src/stable.cpp" "src/core/CMakeFiles/rri_core.dir/src/stable.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/stable.cpp.o.d"
  "/root/repo/src/core/src/structure.cpp" "src/core/CMakeFiles/rri_core.dir/src/structure.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/structure.cpp.o.d"
  "/root/repo/src/core/src/traceback.cpp" "src/core/CMakeFiles/rri_core.dir/src/traceback.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/traceback.cpp.o.d"
  "/root/repo/src/core/src/windowed.cpp" "src/core/CMakeFiles/rri_core.dir/src/windowed.cpp.o" "gcc" "src/core/CMakeFiles/rri_core.dir/src/windowed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rna/CMakeFiles/rri_rna.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
