file(REMOVE_RECURSE
  "CMakeFiles/rri_core.dir/src/bpmax.cpp.o"
  "CMakeFiles/rri_core.dir/src/bpmax.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/bpmax_baseline.cpp.o"
  "CMakeFiles/rri_core.dir/src/bpmax_baseline.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/bpmax_coarse.cpp.o"
  "CMakeFiles/rri_core.dir/src/bpmax_coarse.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/bpmax_fine.cpp.o"
  "CMakeFiles/rri_core.dir/src/bpmax_fine.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/bpmax_hybrid.cpp.o"
  "CMakeFiles/rri_core.dir/src/bpmax_hybrid.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/bpmax_hybrid_tiled.cpp.o"
  "CMakeFiles/rri_core.dir/src/bpmax_hybrid_tiled.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/bpmax_serial_permuted.cpp.o"
  "CMakeFiles/rri_core.dir/src/bpmax_serial_permuted.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/double_maxplus.cpp.o"
  "CMakeFiles/rri_core.dir/src/double_maxplus.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/exhaustive.cpp.o"
  "CMakeFiles/rri_core.dir/src/exhaustive.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/serialize.cpp.o"
  "CMakeFiles/rri_core.dir/src/serialize.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/stable.cpp.o"
  "CMakeFiles/rri_core.dir/src/stable.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/structure.cpp.o"
  "CMakeFiles/rri_core.dir/src/structure.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/traceback.cpp.o"
  "CMakeFiles/rri_core.dir/src/traceback.cpp.o.d"
  "CMakeFiles/rri_core.dir/src/windowed.cpp.o"
  "CMakeFiles/rri_core.dir/src/windowed.cpp.o.d"
  "librri_core.a"
  "librri_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rri_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
