# Empty compiler generated dependencies file for rri_core.
# This may be replaced when dependencies are built.
