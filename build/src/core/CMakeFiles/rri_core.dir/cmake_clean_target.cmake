file(REMOVE_RECURSE
  "librri_core.a"
)
