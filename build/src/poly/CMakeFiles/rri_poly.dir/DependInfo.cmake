
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/src/affine.cpp" "src/poly/CMakeFiles/rri_poly.dir/src/affine.cpp.o" "gcc" "src/poly/CMakeFiles/rri_poly.dir/src/affine.cpp.o.d"
  "/root/repo/src/poly/src/bpmax_catalog.cpp" "src/poly/CMakeFiles/rri_poly.dir/src/bpmax_catalog.cpp.o" "gcc" "src/poly/CMakeFiles/rri_poly.dir/src/bpmax_catalog.cpp.o.d"
  "/root/repo/src/poly/src/polyhedron.cpp" "src/poly/CMakeFiles/rri_poly.dir/src/polyhedron.cpp.o" "gcc" "src/poly/CMakeFiles/rri_poly.dir/src/polyhedron.cpp.o.d"
  "/root/repo/src/poly/src/scan.cpp" "src/poly/CMakeFiles/rri_poly.dir/src/scan.cpp.o" "gcc" "src/poly/CMakeFiles/rri_poly.dir/src/scan.cpp.o.d"
  "/root/repo/src/poly/src/schedule.cpp" "src/poly/CMakeFiles/rri_poly.dir/src/schedule.cpp.o" "gcc" "src/poly/CMakeFiles/rri_poly.dir/src/schedule.cpp.o.d"
  "/root/repo/src/poly/src/search.cpp" "src/poly/CMakeFiles/rri_poly.dir/src/search.cpp.o" "gcc" "src/poly/CMakeFiles/rri_poly.dir/src/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
