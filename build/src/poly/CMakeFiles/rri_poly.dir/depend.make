# Empty dependencies file for rri_poly.
# This may be replaced when dependencies are built.
