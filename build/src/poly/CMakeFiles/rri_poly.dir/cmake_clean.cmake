file(REMOVE_RECURSE
  "CMakeFiles/rri_poly.dir/src/affine.cpp.o"
  "CMakeFiles/rri_poly.dir/src/affine.cpp.o.d"
  "CMakeFiles/rri_poly.dir/src/bpmax_catalog.cpp.o"
  "CMakeFiles/rri_poly.dir/src/bpmax_catalog.cpp.o.d"
  "CMakeFiles/rri_poly.dir/src/polyhedron.cpp.o"
  "CMakeFiles/rri_poly.dir/src/polyhedron.cpp.o.d"
  "CMakeFiles/rri_poly.dir/src/scan.cpp.o"
  "CMakeFiles/rri_poly.dir/src/scan.cpp.o.d"
  "CMakeFiles/rri_poly.dir/src/schedule.cpp.o"
  "CMakeFiles/rri_poly.dir/src/schedule.cpp.o.d"
  "CMakeFiles/rri_poly.dir/src/search.cpp.o"
  "CMakeFiles/rri_poly.dir/src/search.cpp.o.d"
  "librri_poly.a"
  "librri_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rri_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
