file(REMOVE_RECURSE
  "librri_poly.a"
)
