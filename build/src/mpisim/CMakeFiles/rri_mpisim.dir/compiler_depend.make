# Empty compiler generated dependencies file for rri_mpisim.
# This may be replaced when dependencies are built.
