
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/src/bsp.cpp" "src/mpisim/CMakeFiles/rri_mpisim.dir/src/bsp.cpp.o" "gcc" "src/mpisim/CMakeFiles/rri_mpisim.dir/src/bsp.cpp.o.d"
  "/root/repo/src/mpisim/src/dist_bpmax.cpp" "src/mpisim/CMakeFiles/rri_mpisim.dir/src/dist_bpmax.cpp.o" "gcc" "src/mpisim/CMakeFiles/rri_mpisim.dir/src/dist_bpmax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rri_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/rri_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/rna/CMakeFiles/rri_rna.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
