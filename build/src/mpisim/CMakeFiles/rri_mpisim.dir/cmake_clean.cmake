file(REMOVE_RECURSE
  "CMakeFiles/rri_mpisim.dir/src/bsp.cpp.o"
  "CMakeFiles/rri_mpisim.dir/src/bsp.cpp.o.d"
  "CMakeFiles/rri_mpisim.dir/src/dist_bpmax.cpp.o"
  "CMakeFiles/rri_mpisim.dir/src/dist_bpmax.cpp.o.d"
  "librri_mpisim.a"
  "librri_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rri_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
