file(REMOVE_RECURSE
  "librri_mpisim.a"
)
