file(REMOVE_RECURSE
  "CMakeFiles/rri_machine.dir/src/roofline.cpp.o"
  "CMakeFiles/rri_machine.dir/src/roofline.cpp.o.d"
  "CMakeFiles/rri_machine.dir/src/spec.cpp.o"
  "CMakeFiles/rri_machine.dir/src/spec.cpp.o.d"
  "librri_machine.a"
  "librri_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rri_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
