file(REMOVE_RECURSE
  "librri_machine.a"
)
