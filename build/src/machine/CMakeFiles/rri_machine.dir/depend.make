# Empty dependencies file for rri_machine.
# This may be replaced when dependencies are built.
