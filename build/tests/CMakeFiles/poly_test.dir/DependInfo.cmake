
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/poly_test.cpp" "tests/CMakeFiles/poly_test.dir/poly_test.cpp.o" "gcc" "tests/CMakeFiles/poly_test.dir/poly_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rri_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rna/CMakeFiles/rri_rna.dir/DependInfo.cmake"
  "/root/repo/build/src/semiring/CMakeFiles/rri_semiring.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/rri_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/alpha/CMakeFiles/rri_alpha.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/rri_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rri_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/rri_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
