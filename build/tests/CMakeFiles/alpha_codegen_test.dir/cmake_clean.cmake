file(REMOVE_RECURSE
  "CMakeFiles/alpha_codegen_test.dir/alpha_codegen_test.cpp.o"
  "CMakeFiles/alpha_codegen_test.dir/alpha_codegen_test.cpp.o.d"
  "alpha_codegen_test"
  "alpha_codegen_test.pdb"
  "alpha_codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
