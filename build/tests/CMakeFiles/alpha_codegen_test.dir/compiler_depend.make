# Empty compiler generated dependencies file for alpha_codegen_test.
# This may be replaced when dependencies are built.
