# Empty compiler generated dependencies file for bpmax_correctness_test.
# This may be replaced when dependencies are built.
