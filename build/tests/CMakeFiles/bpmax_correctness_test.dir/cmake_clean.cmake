file(REMOVE_RECURSE
  "CMakeFiles/bpmax_correctness_test.dir/bpmax_correctness_test.cpp.o"
  "CMakeFiles/bpmax_correctness_test.dir/bpmax_correctness_test.cpp.o.d"
  "bpmax_correctness_test"
  "bpmax_correctness_test.pdb"
  "bpmax_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpmax_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
