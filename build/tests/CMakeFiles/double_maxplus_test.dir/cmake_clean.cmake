file(REMOVE_RECURSE
  "CMakeFiles/double_maxplus_test.dir/double_maxplus_test.cpp.o"
  "CMakeFiles/double_maxplus_test.dir/double_maxplus_test.cpp.o.d"
  "double_maxplus_test"
  "double_maxplus_test.pdb"
  "double_maxplus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_maxplus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
