# Empty dependencies file for double_maxplus_test.
# This may be replaced when dependencies are built.
