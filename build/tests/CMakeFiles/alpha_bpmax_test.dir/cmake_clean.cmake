file(REMOVE_RECURSE
  "CMakeFiles/alpha_bpmax_test.dir/alpha_bpmax_test.cpp.o"
  "CMakeFiles/alpha_bpmax_test.dir/alpha_bpmax_test.cpp.o.d"
  "alpha_bpmax_test"
  "alpha_bpmax_test.pdb"
  "alpha_bpmax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_bpmax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
