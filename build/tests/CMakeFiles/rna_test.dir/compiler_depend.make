# Empty compiler generated dependencies file for rna_test.
# This may be replaced when dependencies are built.
