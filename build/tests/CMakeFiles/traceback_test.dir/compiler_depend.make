# Empty compiler generated dependencies file for traceback_test.
# This may be replaced when dependencies are built.
