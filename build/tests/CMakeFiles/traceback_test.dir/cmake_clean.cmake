file(REMOVE_RECURSE
  "CMakeFiles/traceback_test.dir/traceback_test.cpp.o"
  "CMakeFiles/traceback_test.dir/traceback_test.cpp.o.d"
  "traceback_test"
  "traceback_test.pdb"
  "traceback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traceback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
