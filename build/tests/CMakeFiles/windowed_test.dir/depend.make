# Empty dependencies file for windowed_test.
# This may be replaced when dependencies are built.
