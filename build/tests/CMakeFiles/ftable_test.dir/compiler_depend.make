# Empty compiler generated dependencies file for ftable_test.
# This may be replaced when dependencies are built.
