file(REMOVE_RECURSE
  "CMakeFiles/ftable_test.dir/ftable_test.cpp.o"
  "CMakeFiles/ftable_test.dir/ftable_test.cpp.o.d"
  "ftable_test"
  "ftable_test.pdb"
  "ftable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
