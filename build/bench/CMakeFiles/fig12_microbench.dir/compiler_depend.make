# Empty compiler generated dependencies file for fig12_microbench.
# This may be replaced when dependencies are built.
