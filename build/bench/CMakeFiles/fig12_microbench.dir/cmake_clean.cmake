file(REMOVE_RECURSE
  "CMakeFiles/fig12_microbench.dir/fig12_microbench.cpp.o"
  "CMakeFiles/fig12_microbench.dir/fig12_microbench.cpp.o.d"
  "fig12_microbench"
  "fig12_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
