file(REMOVE_RECURSE
  "CMakeFiles/fig17_smt_effect.dir/fig17_smt_effect.cpp.o"
  "CMakeFiles/fig17_smt_effect.dir/fig17_smt_effect.cpp.o.d"
  "fig17_smt_effect"
  "fig17_smt_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_smt_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
