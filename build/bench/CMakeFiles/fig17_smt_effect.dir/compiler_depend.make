# Empty compiler generated dependencies file for fig17_smt_effect.
# This may be replaced when dependencies are built.
