file(REMOVE_RECURSE
  "CMakeFiles/tab6_loc_stats.dir/tab6_loc_stats.cpp.o"
  "CMakeFiles/tab6_loc_stats.dir/tab6_loc_stats.cpp.o.d"
  "tab6_loc_stats"
  "tab6_loc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_loc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
