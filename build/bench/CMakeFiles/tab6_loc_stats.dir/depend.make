# Empty dependencies file for tab6_loc_stats.
# This may be replaced when dependencies are built.
