file(REMOVE_RECURSE
  "CMakeFiles/fig18_tile_shapes.dir/fig18_tile_shapes.cpp.o"
  "CMakeFiles/fig18_tile_shapes.dir/fig18_tile_shapes.cpp.o.d"
  "fig18_tile_shapes"
  "fig18_tile_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_tile_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
