# Empty dependencies file for fig18_tile_shapes.
# This may be replaced when dependencies are built.
