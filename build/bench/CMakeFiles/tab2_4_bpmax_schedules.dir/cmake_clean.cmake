file(REMOVE_RECURSE
  "CMakeFiles/tab2_4_bpmax_schedules.dir/tab2_4_bpmax_schedules.cpp.o"
  "CMakeFiles/tab2_4_bpmax_schedules.dir/tab2_4_bpmax_schedules.cpp.o.d"
  "tab2_4_bpmax_schedules"
  "tab2_4_bpmax_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_4_bpmax_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
