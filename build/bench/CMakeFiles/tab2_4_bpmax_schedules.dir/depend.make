# Empty dependencies file for tab2_4_bpmax_schedules.
# This may be replaced when dependencies are built.
