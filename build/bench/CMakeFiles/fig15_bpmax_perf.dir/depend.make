# Empty dependencies file for fig15_bpmax_perf.
# This may be replaced when dependencies are built.
