file(REMOVE_RECURSE
  "CMakeFiles/fig15_bpmax_perf.dir/fig15_bpmax_perf.cpp.o"
  "CMakeFiles/fig15_bpmax_perf.dir/fig15_bpmax_perf.cpp.o.d"
  "fig15_bpmax_perf"
  "fig15_bpmax_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_bpmax_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
