file(REMOVE_RECURSE
  "CMakeFiles/ext_mpi_scaling.dir/ext_mpi_scaling.cpp.o"
  "CMakeFiles/ext_mpi_scaling.dir/ext_mpi_scaling.cpp.o.d"
  "ext_mpi_scaling"
  "ext_mpi_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mpi_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
