file(REMOVE_RECURSE
  "CMakeFiles/fig10_memory_layouts.dir/fig10_memory_layouts.cpp.o"
  "CMakeFiles/fig10_memory_layouts.dir/fig10_memory_layouts.cpp.o.d"
  "fig10_memory_layouts"
  "fig10_memory_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_memory_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
