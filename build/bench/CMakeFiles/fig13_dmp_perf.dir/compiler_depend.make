# Empty compiler generated dependencies file for fig13_dmp_perf.
# This may be replaced when dependencies are built.
