file(REMOVE_RECURSE
  "CMakeFiles/fig13_dmp_perf.dir/fig13_dmp_perf.cpp.o"
  "CMakeFiles/fig13_dmp_perf.dir/fig13_dmp_perf.cpp.o.d"
  "fig13_dmp_perf"
  "fig13_dmp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dmp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
