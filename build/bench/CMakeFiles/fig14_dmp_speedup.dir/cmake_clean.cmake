file(REMOVE_RECURSE
  "CMakeFiles/fig14_dmp_speedup.dir/fig14_dmp_speedup.cpp.o"
  "CMakeFiles/fig14_dmp_speedup.dir/fig14_dmp_speedup.cpp.o.d"
  "fig14_dmp_speedup"
  "fig14_dmp_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dmp_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
