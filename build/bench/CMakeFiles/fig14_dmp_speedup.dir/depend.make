# Empty dependencies file for fig14_dmp_speedup.
# This may be replaced when dependencies are built.
