file(REMOVE_RECURSE
  "CMakeFiles/fig16_bpmax_speedup.dir/fig16_bpmax_speedup.cpp.o"
  "CMakeFiles/fig16_bpmax_speedup.dir/fig16_bpmax_speedup.cpp.o.d"
  "fig16_bpmax_speedup"
  "fig16_bpmax_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_bpmax_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
