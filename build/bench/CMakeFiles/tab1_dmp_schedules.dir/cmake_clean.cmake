file(REMOVE_RECURSE
  "CMakeFiles/tab1_dmp_schedules.dir/tab1_dmp_schedules.cpp.o"
  "CMakeFiles/tab1_dmp_schedules.dir/tab1_dmp_schedules.cpp.o.d"
  "tab1_dmp_schedules"
  "tab1_dmp_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_dmp_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
