# Empty dependencies file for tab1_dmp_schedules.
# This may be replaced when dependencies are built.
