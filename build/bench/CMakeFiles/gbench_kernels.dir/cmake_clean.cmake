file(REMOVE_RECURSE
  "CMakeFiles/gbench_kernels.dir/gbench_kernels.cpp.o"
  "CMakeFiles/gbench_kernels.dir/gbench_kernels.cpp.o.d"
  "gbench_kernels"
  "gbench_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
