file(REMOVE_RECURSE
  "CMakeFiles/rri_scan.dir/rri_scan.cpp.o"
  "CMakeFiles/rri_scan.dir/rri_scan.cpp.o.d"
  "rri_scan"
  "rri_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rri_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
