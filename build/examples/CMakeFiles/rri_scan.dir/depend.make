# Empty dependencies file for rri_scan.
# This may be replaced when dependencies are built.
