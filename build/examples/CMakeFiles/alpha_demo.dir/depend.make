# Empty dependencies file for alpha_demo.
# This may be replaced when dependencies are built.
