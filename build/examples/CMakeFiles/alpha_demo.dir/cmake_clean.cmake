file(REMOVE_RECURSE
  "CMakeFiles/alpha_demo.dir/alpha_demo.cpp.o"
  "CMakeFiles/alpha_demo.dir/alpha_demo.cpp.o.d"
  "alpha_demo"
  "alpha_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
