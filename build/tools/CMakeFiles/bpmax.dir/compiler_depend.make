# Empty compiler generated dependencies file for bpmax.
# This may be replaced when dependencies are built.
