file(REMOVE_RECURSE
  "CMakeFiles/bpmax.dir/bpmax_cli.cpp.o"
  "CMakeFiles/bpmax.dir/bpmax_cli.cpp.o.d"
  "bpmax"
  "bpmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
