#!/usr/bin/env sh
# Run the PR-5 bench bundle: the fig13 double max-plus sweep (one run
# per SIMD backend) plus a small batch-serving sweep, and bundle both
# perf reports into BENCH_pr5.json at the repo root (schema
# rri-bench-bundle/1, documented in docs/observability.md). CI uploads
# the bundle as an artifact; locally it is a one-command snapshot you
# can perf_diff against a later checkout.
#
#   ci/run_bench.sh [build-dir]   (default: build)
#
# Knobs: RRI_BENCH_SCALE / RRI_BENCH_REPS shrink or grow the fig13
# sweep exactly as for any bench binary.

set -eu

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${REPO_ROOT}/BENCH_pr5.json"
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

FIG13="${BUILD_DIR}/bench/fig13_dmp_perf"
BATCH="${BUILD_DIR}/tools/bpmax_batch"
for bin in "${FIG13}" "${BATCH}"; do
  if [ ! -x "${bin}" ]; then
    echo "run_bench: missing ${bin} (build the fig13_dmp_perf and" \
         "bpmax_batch targets first)" >&2
    exit 2
  fi
done

# 1. fig13: RRI_BENCH_JSON=<dir> makes the bench drop its
#    BENCH_<slug>.json perf report there.
echo "run_bench: fig13 double max-plus sweep..."
RRI_BENCH_JSON="${WORK}" "${FIG13}" > "${WORK}/fig13.out"
FIG13_JSON="$(ls "${WORK}"/BENCH_*.json)"

# 2. batch-serve: a duplicate-heavy manifest exercises scheduling, the
#    result cache, and the serve latency histograms end to end.
echo "run_bench: batch-serve sweep..."
cat > "${WORK}/bench_manifest.jsonl" <<'EOF'
{"id":"a","s1":"GGGAAACCCAUGCGGGAAACCC","s2":"UUGCCAAGGUUGCC"}
{"id":"b","s1":"GGGAAACCCAUGCGGGAAACCC","s2":"UUGCCAAGGUUGCC"}
{"id":"c","s1":"GCAUGCAUGCAUGCAUGCAUGCAU","s2":"AUGCAUGCAUGC"}
{"id":"d","s1":"GGGGAAAACCCCUUUUGGGGAAAA","s2":"UUUUCCCCAAAAGG"}
{"id":"e","s1":"GCAUGCAUGCAUGCAUGCAUGCAU","s2":"AUGCAUGCAUGC"}
{"id":"f","s1":"AAGGCCUUAAGGCCUUAAGGCCUU","s2":"GGCCAAUUGGCC"}
EOF
"${BATCH}" --manifest "${WORK}/bench_manifest.jsonl" --jobs 2 \
  --profile="${WORK}/batch_report.json" --out "${WORK}/batch_results.jsonl"

# 3. Bundle: both documents are complete rri-obs-report/1 reports, so
#    jq '.fig13' / jq '.batch_serve' recovers something perf_diff reads.
echo "run_bench: writing ${OUT}"
{
  printf '{"schema":"rri-bench-bundle/1",\n"fig13":'
  cat "${FIG13_JSON}"
  printf ',\n"batch_serve":'
  cat "${WORK}/batch_report.json"
  printf '}\n'
} > "${OUT}"
echo "run_bench: done ($(wc -c < "${OUT}") bytes)"
