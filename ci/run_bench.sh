#!/usr/bin/env sh
# Run the bench bundle: the fig13 double max-plus sweep (one run per
# SIMD backend), a small batch-serving sweep, a daemon sweep that
# drives rri_served through rri_client at 1/2/4 workers, a two-tenant
# contention sweep (an abusive tenant flooding the queue next to a
# well-behaved one, quotas off vs on), a bppart partition-function
# sweep (per-variant wall time in the logsumexp algebra), and a
# telemetry scrape-overhead sweep (the same daemon workload bare vs
# scraped once per second with SLO evaluation on; warn-only 2% budget)
# — bundled into one JSON document (schema rri-bench-bundle/1,
# documented in docs/observability.md). CI uploads the bundle as an
# artifact; locally it is a one-command snapshot you can perf_diff
# against a later checkout.
#
#   ci/run_bench.sh [build-dir]   (default: build)
#
# Knobs:
#   RRI_BENCH_OUT    bundle path (default: <repo>/BENCH_pr10.json)
#   RRI_BENCH_SCALE / RRI_BENCH_REPS shrink or grow the fig13 sweep
#   exactly as for any bench binary.

set -eu

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${RRI_BENCH_OUT:-${REPO_ROOT}/BENCH_pr10.json}"
WORK="$(mktemp -d)"
DAEMON_PID=""
SCRAPER_PID=""

# One cleanup path for every exit: kill a still-running scraper and
# daemon first (otherwise the port and the work dir linger), then drop
# the work dir. Quote-safe — ${WORK} is expanded at cleanup time, not
# trap-set time.
cleanup() {
  if [ -n "${SCRAPER_PID}" ] && kill -0 "${SCRAPER_PID}" 2>/dev/null; then
    kill "${SCRAPER_PID}" 2>/dev/null || true
    wait "${SCRAPER_PID}" 2>/dev/null || true
  fi
  if [ -n "${DAEMON_PID}" ] && kill -0 "${DAEMON_PID}" 2>/dev/null; then
    kill "${DAEMON_PID}" 2>/dev/null || true
    wait "${DAEMON_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT INT TERM HUP

if ! command -v jq > /dev/null 2>&1; then
  echo "run_bench: jq is required to extract daemon percentiles from" \
       "the obs reports — install it (apt-get install jq) and re-run" >&2
  exit 2
fi

FIG13="${BUILD_DIR}/bench/fig13_dmp_perf"
BATCH="${BUILD_DIR}/tools/bpmax_batch"
DAEMON="${BUILD_DIR}/tools/rri_served"
CLIENT="${BUILD_DIR}/tools/rri_client"
BPPART="${BUILD_DIR}/tools/bppart"
for bin in "${FIG13}" "${BATCH}" "${DAEMON}" "${CLIENT}" "${BPPART}"; do
  if [ ! -x "${bin}" ]; then
    echo "run_bench: missing ${bin} (build the fig13_dmp_perf," \
         "bpmax_batch, rri_served, rri_client and bppart targets" \
         "first)" >&2
    exit 2
  fi
done

# 1. fig13: RRI_BENCH_JSON=<dir> makes the bench drop its
#    BENCH_<slug>.json perf report there.
echo "run_bench: fig13 double max-plus sweep..."
RRI_BENCH_JSON="${WORK}" "${FIG13}" > "${WORK}/fig13.out"
FIG13_JSON="$(ls "${WORK}"/BENCH_*.json)"
# Per-backend speedup lines (simd_speedup_min[avx2]: 1.83 ...) become a
# {"backend":..., "speedup_min":...} table in the bundle; empty on
# scalar-only hosts.
SIMD_ROWS="$(sed -nE \
  's/^simd_speedup_min\[([a-z0-9]+)\]: ([0-9.]+)$/{"backend":"\1","speedup_min":\2}/p' \
  "${WORK}/fig13.out" | paste -sd, -)"

# 2. batch-serve: a duplicate-heavy manifest exercises scheduling, the
#    result cache, and the serve latency histograms end to end.
echo "run_bench: batch-serve sweep..."
cat > "${WORK}/bench_manifest.jsonl" <<'EOF'
{"id":"a","s1":"GGGAAACCCAUGCGGGAAACCC","s2":"UUGCCAAGGUUGCC"}
{"id":"b","s1":"GGGAAACCCAUGCGGGAAACCC","s2":"UUGCCAAGGUUGCC"}
{"id":"c","s1":"GCAUGCAUGCAUGCAUGCAUGCAU","s2":"AUGCAUGCAUGC"}
{"id":"d","s1":"GGGGAAAACCCCUUUUGGGGAAAA","s2":"UUUUCCCCAAAAGG"}
{"id":"e","s1":"GCAUGCAUGCAUGCAUGCAUGCAU","s2":"AUGCAUGCAUGC"}
{"id":"f","s1":"AAGGCCUUAAGGCCUUAAGGCCUU","s2":"GGCCAAUUGGCC"}
EOF
"${BATCH}" --manifest "${WORK}/bench_manifest.jsonl" --jobs 2 \
  --profile="${WORK}/batch_report.json" --out "${WORK}/batch_results.jsonl"

# 3. daemon sweep: a fresh rri_served per worker count, driven over the
#    socket by rri_client. Distinct pairs (no cache hits) so queue-wait
#    reflects real kernel runs; jobs/sec comes from the client's summary
#    line, the p99 of serve.queue_wait_s from the daemon's obs report.
echo "run_bench: daemon sweep (1/2/4 workers)..."
awk 'BEGIN {
  b = "ACGUGGGAAACCCAUGCAAGGCCUU";
  for (i = 0; i < 16; ++i)
    printf "{\"id\":\"d%02d\",\"s1\":\"%sGGGAAACCC%s\",\"s2\":\"UUGCCAAGG\"}\n",
           i, substr(b, 1, 9 + i % 8), substr(b, 1 + i, 8);
}' > "${WORK}/daemon_manifest.jsonl"
DAEMON_ROWS=""
for W in 1 2 4; do
  rm -f "${WORK}/port.txt"
  RRI_OBS=1 RRI_OBS_JSON="${WORK}/daemon_w${W}.json" \
    "${DAEMON}" --port 0 --port-file "${WORK}/port.txt" --jobs "${W}" \
    > "${WORK}/served_w${W}.log" 2>&1 &
  DAEMON_PID=$!
  "${CLIENT}" --port-file "${WORK}/port.txt" submit \
    --manifest "${WORK}/daemon_manifest.jsonl" \
    --out "${WORK}/daemon_results_w${W}.jsonl" \
    2> "${WORK}/client_w${W}.log"
  "${CLIENT}" --port-file "${WORK}/port.txt" drain > /dev/null
  wait "${DAEMON_PID}"
  DAEMON_PID=""
  jobs_per_sec="$(sed -nE 's|.*\(([0-9.]+) jobs/sec.*|\1|p' \
    "${WORK}/client_w${W}.log")"
  p99="$(jq '[.histograms[] | select(.name == "serve.queue_wait_s")][0]
             .p99_seconds // 0' "${WORK}/daemon_w${W}.json")"
  echo "run_bench:   workers=${W}: ${jobs_per_sec} jobs/sec," \
       "queue-wait p99 ${p99}s"
  row="{\"workers\":${W},\"jobs_per_sec\":${jobs_per_sec},"
  row="${row}\"queue_wait_p99_s\":${p99}}"
  DAEMON_ROWS="${DAEMON_ROWS}${DAEMON_ROWS:+,}${row}"
done

# 4. two-tenant contention: tenant "abuser" floods 16 slow jobs into
#    the queue, then tenant "polite" submits 4 small ones behind them.
#    Run once with quotas off and once with the abuser capped at 2
#    concurrent jobs; the polite tenant's queue-wait p99 (from its
#    per-tenant serve.queue_wait_s.tenant.polite histogram) is the
#    number quotas exist to protect.
echo "run_bench: two-tenant contention sweep (quotas off/on)..."
awk 'BEGIN {
  b = "ACGUGGGAAACCCAUGCAAGGCCUU";
  for (i = 0; i < 16; ++i)
    printf "{\"id\":\"a%02d\",\"s1\":\"%sGGGAAACCCAUGCGGGAAACCC\",\"s2\":\"UUGCCAAGGUUGCC\"}\n",
           i, substr(b, 1, 9 + i % 8);
}' > "${WORK}/abuser_manifest.jsonl"
awk 'BEGIN {
  for (i = 0; i < 4; ++i)
    printf "{\"id\":\"p%02d\",\"s1\":\"GGGAAACCCAUG%s\",\"s2\":\"UUGCCAAGG\"}\n",
           i, substr("CAGU", 1 + i, 1);
}' > "${WORK}/polite_manifest.jsonl"
cat > "${WORK}/tenants.jsonl" <<'EOF'
{"tenant":"abuser","max_concurrent":2}
EOF
TENANT_ROWS=""
for MODE in off on; do
  rm -f "${WORK}/port.txt"
  if [ "${MODE}" = "on" ]; then
    QUOTA_ARGS="--tenant-config ${WORK}/tenants.jsonl"
  else
    QUOTA_ARGS=""
  fi
  # shellcheck disable=SC2086 -- QUOTA_ARGS is deliberately word-split
  RRI_OBS=1 RRI_OBS_JSON="${WORK}/tenant_${MODE}.json" \
    "${DAEMON}" --port 0 --port-file "${WORK}/port.txt" --jobs 2 \
    ${QUOTA_ARGS} > "${WORK}/served_tenant_${MODE}.log" 2>&1 &
  DAEMON_PID=$!
  # The abuser floods and walks away (--no-wait); with quotas on its
  # over-cap submits are refused after the retry budget (exit 4 — not
  # an error here, it is the mechanism under test).
  "${CLIENT}" --port-file "${WORK}/port.txt" --tenant abuser \
    --retries 1 submit --manifest "${WORK}/abuser_manifest.jsonl" \
    --no-wait 2> "${WORK}/abuser_${MODE}.log" || true
  # The polite tenant submits behind the flood and waits for results.
  "${CLIENT}" --port-file "${WORK}/port.txt" --tenant polite \
    submit --manifest "${WORK}/polite_manifest.jsonl" \
    --out "${WORK}/polite_${MODE}.jsonl" 2> "${WORK}/polite_${MODE}.log"
  "${CLIENT}" --port-file "${WORK}/port.txt" drain > /dev/null
  wait "${DAEMON_PID}"
  DAEMON_PID=""
  polite_p99="$(jq '[.histograms[]
      | select(.name == "serve.queue_wait_s.tenant.polite")][0]
      .p99_seconds // 0' "${WORK}/tenant_${MODE}.json")"
  echo "run_bench:   quotas ${MODE}: polite queue-wait p99 ${polite_p99}s"
  row="{\"quotas\":\"${MODE}\",\"polite_queue_wait_p99_s\":${polite_p99}}"
  TENANT_ROWS="${TENANT_ROWS}${TENANT_ROWS:+,}${row}"
  if [ "${MODE}" = "off" ]; then
    P99_OFF="${polite_p99}"
  else
    awk -v off="${P99_OFF}" -v on="${polite_p99}" 'BEGIN {
      if (on < off)
        printf "run_bench:   quotas cut the polite p99 %.3fs -> %.3fs\n",
               off, on;
      else
        printf "run_bench: WARNING: polite p99 did not improve " \
               "(%.3fs off vs %.3fs on)\n", off, on;
    }'
  fi
done

# 5. bppart sweep: the partition-function workload in the logsumexp
#    algebra, one run per fill variant on the same pair. The CSV row the
#    CLI prints carries the wall time; the log_z column doubles as a
#    cross-variant consistency check (the engine pins the reduction
#    order, so every variant must print identical digits).
echo "run_bench: bppart partition-function sweep..."
BP_S1="$(awk 'BEGIN { for (i = 0; i < 4; ++i) printf "GGGAAACCCAUGC" }')"
BP_S2="$(awk 'BEGIN { for (i = 0; i < 3; ++i) printf "UUGCCAAGGUUGCC" }')"
BPPART_ROWS=""
BP_LOG_Z=""
for V in serial row_parallel tiled; do
  "${BPPART}" --csv --variant "${V}" "${BP_S1}" "${BP_S2}" \
    > "${WORK}/bppart_${V}.csv"
  row="$(awk -F, 'NR == 2 {
    printf "{\"variant\":\"%s\",\"m\":%s,\"n\":%s,\"log_z\":%s,\"seconds\":%s}",
           $6, $1, $2, $3, $5
  }' "${WORK}/bppart_${V}.csv")"
  log_z="$(awk -F, 'NR == 2 { print $3 }' "${WORK}/bppart_${V}.csv")"
  echo "run_bench:   variant=${V}: log_z=${log_z}"
  if [ -z "${BP_LOG_Z}" ]; then
    BP_LOG_Z="${log_z}"
  elif [ "${log_z}" != "${BP_LOG_Z}" ]; then
    echo "run_bench: ERROR: bppart variant ${V} disagrees" \
         "(${log_z} vs ${BP_LOG_Z}) — the engine promises bit-identical" \
         "fills across variants" >&2
    exit 1
  fi
  BPPART_ROWS="${BPPART_ROWS}${BPPART_ROWS:+,}${row}"
done

# 6. telemetry scrape overhead: the daemon-sweep manifest twice at 2
#    workers — once bare, once with the live telemetry plane fully on
#    (HTTP /metrics listener, SLO evaluation every 0.25 s, and a
#    background scraper pulling the exposition once per second).
#    Throughput comes from the client's jobs/sec summary line both
#    times; the scraped run costing more than 2% is worth a warning
#    (warn-only: shared runners are too noisy to gate on).
echo "run_bench: telemetry scrape-overhead sweep..."
cat > "${WORK}/bench_slo.jsonl" <<'EOF'
{"name":"queue-p99","kind":"latency","histogram":"serve.queue_wait_s","quantile":0.99,"max_seconds":30.0,"fast_window_s":60,"slow_window_s":300}
EOF
SCRAPE_ROW=""
for MODE in bare scraped; do
  rm -f "${WORK}/port.txt" "${WORK}/mport.txt"
  if [ "${MODE}" = "scraped" ]; then
    TELEMETRY_ARGS="--metrics-port 0 --metrics-port-file ${WORK}/mport.txt"
    TELEMETRY_ARGS="${TELEMETRY_ARGS} --slo-config ${WORK}/bench_slo.jsonl"
    TELEMETRY_ARGS="${TELEMETRY_ARGS} --telemetry-interval 0.25"
  else
    TELEMETRY_ARGS=""
  fi
  # shellcheck disable=SC2086 -- TELEMETRY_ARGS is deliberately word-split
  "${DAEMON}" --port 0 --port-file "${WORK}/port.txt" --jobs 2 \
    ${TELEMETRY_ARGS} > "${WORK}/served_${MODE}.log" 2>&1 &
  DAEMON_PID=$!
  if [ "${MODE}" = "scraped" ]; then
    # Scrape the protocol-verb exposition once per second in the
    # background — same encoder as GET /metrics, no curl dependency.
    (
      while :; do
        "${CLIENT}" --port-file "${WORK}/port.txt" metrics \
          > /dev/null 2>&1 || true
        sleep 1
      done
    ) &
    SCRAPER_PID=$!
  fi
  "${CLIENT}" --port-file "${WORK}/port.txt" submit \
    --manifest "${WORK}/daemon_manifest.jsonl" \
    --out "${WORK}/scrape_${MODE}.jsonl" 2> "${WORK}/scrape_${MODE}.log"
  if [ -n "${SCRAPER_PID}" ]; then
    kill "${SCRAPER_PID}" 2>/dev/null || true
    wait "${SCRAPER_PID}" 2>/dev/null || true
    SCRAPER_PID=""
  fi
  "${CLIENT}" --port-file "${WORK}/port.txt" drain > /dev/null
  wait "${DAEMON_PID}"
  DAEMON_PID=""
  jps="$(sed -nE 's|.*\(([0-9.]+) jobs/sec.*|\1|p' \
    "${WORK}/scrape_${MODE}.log")"
  echo "run_bench:   ${MODE}: ${jps} jobs/sec"
  if [ "${MODE}" = "bare" ]; then
    JPS_BARE="${jps}"
  else
    SCRAPE_ROW="$(awk -v bare="${JPS_BARE}" -v scraped="${jps}" 'BEGIN {
      pct = bare > 0 ? (bare - scraped) / bare * 100 : 0;
      printf "{\"bare_jobs_per_sec\":%s,\"scraped_jobs_per_sec\":%s,", \
             bare, scraped;
      printf "\"overhead_pct\":%.2f}", pct;
      if (pct >= 2)
        printf "run_bench: WARNING: telemetry scrape overhead " \
               "%.1f%% above the 2%% budget\n", pct > "/dev/stderr";
      else
        printf "run_bench:   scrape overhead %.1f%% (budget 2%%)\n",
               pct > "/dev/stderr";
    }')"
  fi
done

# 7. Bundle: fig13 and batch_serve are complete rri-obs-report/1
#    documents (perf_diff reads them); simd_speedups, daemon,
#    tenant_contention, bppart and telemetry_overhead are sweep tables.
echo "run_bench: writing ${OUT}"
{
  printf '{"schema":"rri-bench-bundle/1",\n"fig13":'
  cat "${FIG13_JSON}"
  printf ',\n"simd_speedups":[%s],\n' "${SIMD_ROWS}"
  printf '"batch_serve":'
  cat "${WORK}/batch_report.json"
  printf ',\n"daemon":[%s],\n' "${DAEMON_ROWS}"
  printf '"tenant_contention":[%s],\n' "${TENANT_ROWS}"
  printf '"bppart":[%s],\n' "${BPPART_ROWS}"
  printf '"telemetry_overhead":%s}\n' "${SCRAPE_ROW:-null}"
} > "${OUT}"
echo "run_bench: done ($(wc -c < "${OUT}") bytes)"
